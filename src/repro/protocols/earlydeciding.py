"""Early-deciding FloodMin: decide in ``f' + 2`` rounds, not ``f + 1``.

The classic refinement of flooding consensus for crash faults: if only
``f' < f`` crashes *actually* occur, waiting the worst-case ``f + 1``
rounds is wasteful.  A process may decide as soon as it observes one
**quiescent round** — a round in which it heard from exactly the same
set of senders as the round before.  A quiescent round means no crash
newly partitioned the information flow, so the process's value set
already equals every other live process's ... after one more exchange;
hence *early deciding* commits at the end of the quiescent round while
the protocol keeps running (and keeps broadcasting) until the
worst-case bound — deciding early but never *stopping* early, which
keeps the protocol non-uniform and therefore compilable (Theorem 2
forbids halting early, not deciding early).

With ``f'`` actual crashes, every correct process decides by round
``f' + 2`` (at most ``f'`` rounds can be non-quiescent for it, plus
one round to witness quiescence, plus the first round has no
predecessor to compare with); the EXT-EARLY bench measures the
decision-round distribution against actual crash counts.

Correctness sketch (crash faults): let round ``k`` be quiescent for
``p`` with sender set ``S``.  Every process in ``S`` was alive at the
start of round ``k`` and its round-``k`` broadcast carried everything
it had merged through round ``k - 1`` — which includes everything any
correct process will ever merge from senders outside ``S`` (those
stopped before round ``k``... their surviving information had already
reached some member of ``S`` by ``k - 1`` to survive at all).  So
``p``'s merged set after round ``k`` contains every value that can
still reach any correct process, and min over it is stable.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Mapping, Sequence

from repro.core.canonical import CanonicalProtocol, StateMessage
from repro.util.validation import require, require_non_negative

__all__ = ["EarlyDecidingFloodMin"]


class EarlyDecidingFloodMin(CanonicalProtocol):
    """FloodMin with the quiescent-round early-decision rule.

    State adds ``last_senders`` (who was heard from in the previous
    round) and ``decided_at_k`` (the protocol round at which the early
    rule fired — ``None`` until then), so analyses can read the
    decision latency per process.
    """

    def __init__(self, f: int, proposals: Sequence[int]):
        require_non_negative(f, "f")
        require(len(proposals) > 0, "at least one proposal is required")
        self.f = f
        self.final_round = f + 1
        self.proposals = tuple(proposals)
        self.name = f"early-floodmin(f={f})"

    def proposal_for(self, pid: int) -> int:
        return self.proposals[pid % len(self.proposals)]

    def initial_inner_state(self, pid: int, n: int) -> Dict[str, Any]:
        value = self.proposal_for(pid)
        return {
            "proposal": value,
            "values": frozenset({value}),
            "last_senders": None,
            "decision": None,
            "decided_at_k": None,
        }

    def transition(
        self,
        pid: int,
        inner_state: Mapping[str, Any],
        messages: Sequence[StateMessage],
        k: int,
        n: int,
    ) -> Dict[str, Any]:
        values = set(inner_state["values"])
        senders = frozenset(sender for sender, _ in messages)
        for _sender, their_state in messages:
            values |= set(their_state.get("values", frozenset()))

        decision = inner_state.get("decision")
        decided_at = inner_state.get("decided_at_k")
        quiescent = (
            inner_state["last_senders"] is not None
            and senders == inner_state["last_senders"]
        )
        if decision is None and values and (quiescent or k == self.final_round):
            decision = min(values)
            decided_at = k
        return {
            "proposal": inner_state["proposal"],
            "values": frozenset(values),
            "last_senders": senders,
            "decision": decision,
            "decided_at_k": decided_at,
        }

    def arbitrary_inner_state(
        self, pid: int, n: int, rng: random.Random
    ) -> Dict[str, Any]:
        pool = [v for v in set(self.proposals) if rng.random() < 0.6] or [
            self.proposals[0]
        ]
        return {
            "proposal": rng.choice(self.proposals),
            "values": frozenset(pool),
            "last_senders": rng.choice(
                [None, frozenset(q for q in range(n) if rng.random() < 0.5)]
            ),
            "decision": rng.choice([None, rng.choice(self.proposals)]),
            "decided_at_k": rng.choice([None, rng.randrange(1, self.final_round + 1)]),
        }
