"""Process-failure-tolerant protocols in the paper's canonical form.

These are the protocols Π that the compiler (Figure 3) transforms.
Each one is:

- **round-based and full-information** — the transition is a pure
  function of (pid, state, received states, protocol round);
- **non-uniform** — it never restricts the behaviour of faulty
  processes (no "self-check and halt"), which Theorem 2 makes a
  prerequisite for compilability;
- specified with an **unbounded** round counter (Python ints).

Inventory:

- :class:`~repro.protocols.floodmin.FloodMinConsensus` — crash faults,
  any ``f < n``, ``f + 1`` rounds, decide the minimum value seen.
- :class:`~repro.protocols.phaseking.PhaseQueenConsensus` — general
  omission (indeed Byzantine) faults, ``n > 4f``, ``2(f + 1)`` rounds.
- :class:`~repro.protocols.broadcast.FloodBroadcast` — crash-tolerant
  reliable broadcast, ``f + 1`` rounds.
- :mod:`~repro.protocols.repeated` — helpers for the repeated problem
  Σ⁺ (extracting per-iteration decisions from compiled runs).
- :mod:`~repro.protocols.unison` — the unison family for arbitrary
  communication graphs (:class:`~repro.protocols.unison.MinUnison`,
  :class:`~repro.protocols.unison.BoundedUnison`); not compiler inputs
  but the self-stabilization benchmark the topology layer unlocks
  (see ``docs/topology.md``).
"""

from repro.protocols.broadcast import BroadcastProblem, FloodBroadcast
from repro.protocols.earlydeciding import EarlyDecidingFloodMin
from repro.protocols.floodmin import FloodMinConsensus
from repro.protocols.interactive import InteractiveConsistency, VectorConsensusProblem
from repro.protocols.phaseking import PhaseQueenConsensus
from repro.protocols.repeated import IterationDecision, iteration_decisions
from repro.protocols.unison import BoundedUnison, MinUnison

__all__ = [
    "BoundedUnison",
    "BroadcastProblem",
    "EarlyDecidingFloodMin",
    "FloodBroadcast",
    "FloodMinConsensus",
    "InteractiveConsistency",
    "IterationDecision",
    "MinUnison",
    "PhaseQueenConsensus",
    "VectorConsensusProblem",
    "iteration_decisions",
]
