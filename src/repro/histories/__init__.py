"""Execution histories and the paper's formal machinery over them.

This subpackage implements Section 2.1 of Gopal & Perry (PODC '93):

- :mod:`repro.histories.history` — round histories and execution
  histories (vectors of per-process state + actions, prefix/suffix
  slicing, the faulty set :math:`\\mathcal{F}(H, \\Pi)`).
- :mod:`repro.histories.causality` — Lamport happened-before over the
  recorded message deliveries.
- :mod:`repro.histories.coterie` — coteries (Definition 2.3) and their
  evolution over prefixes of a history.
- :mod:`repro.histories.stability` — stable-coterie windows, the raw
  material for the ``ftss-solves`` checker (Definition 2.4).
"""

from repro.histories.causality import (
    CausalityTracker,
    happened_before,
    knowledge_timeline,
)
from repro.histories.coterie import coterie, coterie_timeline
from repro.histories.history import (
    CLOCK_KEY,
    ExecutionHistory,
    Message,
    ProcessRoundRecord,
    RoundHistory,
    renumber,
)
from repro.histories.stability import (
    StableWindow,
    is_coterie_monotone,
    stable_windows,
    windows_from_timeline,
)

__all__ = [
    "CLOCK_KEY",
    "CausalityTracker",
    "ExecutionHistory",
    "Message",
    "ProcessRoundRecord",
    "RoundHistory",
    "StableWindow",
    "coterie",
    "coterie_timeline",
    "happened_before",
    "is_coterie_monotone",
    "knowledge_timeline",
    "renumber",
    "stable_windows",
    "windows_from_timeline",
]
