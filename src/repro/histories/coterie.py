"""Coteries (paper, Definition 2.3) and their evolution over prefixes.

    The coterie of ``H`` with protocol ``Π`` is the set of processes
    ``p`` such that for **all** correct processes ``q``: ``p ->_H q``.

Correctness here is relative to the prefix being examined: a process
that has not yet deviated counts as correct, which is what lets a
lurking faulty process "reveal itself" later and change the coterie —
the paper's de-stabilizing event.

Key structural fact used throughout the library (and verified by
property tests): **the coterie is monotone non-decreasing in the prefix
length.**  Knowledge sets only grow, and the correct set only shrinks
(each removal weakens the ∀-quantifier), so once a process enters the
coterie it never leaves.  Stable-coterie windows are therefore exactly
the runs between coterie-growth events, which makes Definition 2.4
checkable by scanning maximal constant runs (:mod:`.stability`).
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.histories.causality import CausalityTracker
from repro.histories.history import ExecutionHistory, ProcessId

__all__ = ["coterie", "coterie_timeline"]


def coterie(history: ExecutionHistory) -> FrozenSet[ProcessId]:
    """``coterie_Π(H)`` for a finished history.

    Processes ``p`` such that ``p ->_H q`` for every process ``q`` that
    is correct in ``H``.  If every process is faulty in ``H`` the
    ∀-condition is vacuous and the coterie is the full process set.
    """
    return coterie_timeline(history)[-1]


def coterie_timeline(history: ExecutionHistory) -> List[FrozenSet[ProcessId]]:
    """The coterie of every prefix of ``history``.

    Element ``i`` is ``coterie_Π(prefix of length i+1)``.  Computed in a
    single pass: knowledge sets are maintained incrementally and the
    cumulative deviator set gives each prefix's correct set.
    """
    tracker = CausalityTracker(history.n)
    everyone = frozenset(history.processes)
    faulty_so_far: set = set()
    timeline: List[FrozenSet[ProcessId]] = []

    for round_history in history:
        tracker.advance(round_history)
        faulty_so_far |= round_history.deviators()
        correct = everyone - faulty_so_far
        if not correct:
            timeline.append(everyone)
            continue
        members = set(everyone)
        for q in correct:
            members &= tracker.know(q)
            if not members:
                break
        timeline.append(frozenset(members))
    return timeline
