"""Round histories and execution histories (paper, Section 2.1).

A *round history* of round ``r`` is a vector that, for each process,
describes the state of the process at the start of round ``r`` and the
actions taken by the process during round ``r``.  An *execution history*
is a sequence of round histories.  The synchronous simulator
(:mod:`repro.sync.engine`) records one of these for every run; all of
the paper's definitions (faulty sets, coteries, problem predicates,
``ftss-solves``) are evaluated over the recorded history, never over
simulator internals — exactly as the paper defines them over histories.

Conventions
-----------
- Processes are identified by integers ``0 .. n-1``.
- Rounds are numbered from 1 (the paper's "actual round number", i.e.
  the external observer's count).  Because of systemic failures a
  process's *round variable* ``c_p`` need not equal the actual round.
- A crashed process's state is *undefined* for subsequent rounds
  (``state_before is None`` / ``clock_before is None``), per the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional, Sequence, Tuple

from repro.util.validation import require, require_positive

__all__ = ["Message", "ProcessRoundRecord", "RoundHistory", "ExecutionHistory"]

ProcessId = int

#: Clock key: by convention every protocol state is a mapping whose
#: ``"clock"`` entry is the paper's distinguished round variable ``c_p``.
CLOCK_KEY = "clock"


@dataclass(frozen=True)
class Message:
    """A single message placed on the network.

    ``sent_round`` is the actual round in which the message was sent;
    in the perfectly synchronous model it is also the round in which the
    message is delivered (constant, one-round delivery time).
    """

    sender: ProcessId
    receiver: ProcessId
    sent_round: int
    payload: Any

    def __post_init__(self) -> None:
        require(self.sender >= 0, f"sender must be a process id, got {self.sender}")
        require(
            self.receiver >= 0, f"receiver must be a process id, got {self.receiver}"
        )
        require_positive(self.sent_round, "sent_round")


@dataclass(frozen=True)
class ProcessRoundRecord:
    """What one process did (and suffered) during one round.

    The deviation flags record *process failures* in the paper's sense:
    a process is faulty once it deviates from its protocol — crashing,
    omitting a send, or omitting a receive.  A process that merely starts
    from a corrupted state but follows its protocol is **not** faulty.

    Attributes
    ----------
    pid:
        The process this record describes.
    state_before:
        The process state at the start of the round (``s_p^r`` together
        with ``c_p^r``), or ``None`` if the process has crashed (the
        paper makes post-crash state undefined).
    clock_before:
        The round variable ``c_p^r`` at the start of the round, or
        ``None`` if crashed.
    sent:
        Messages actually placed on the network this round (i.e. after
        send-omission/crash filtering by the adversary).
    delivered:
        Messages actually delivered to this process this round (after
        receive-omission filtering).
    crashed:
        True if the process crashed in or before this round.
    omitted_sends:
        Receivers to whom this process failed to send a protocol-required
        message this round (send-omission deviations charged to ``pid``).
    omitted_receives:
        Senders whose delivered-to-everyone message this process failed
        to receive this round (receive-omission deviations charged to
        ``pid``).
    forged_sends:
        Receivers to whom this process sent a payload *different from
        what its protocol prescribes* (Byzantine-value deviations; the
        synchronous paper model stops at general omission, but the
        engine supports forgery so §1.2's systemic-vs-Byzantine
        contrast can be run — see the EXT-BYZ experiment).
    """

    pid: ProcessId
    state_before: Optional[Mapping[str, Any]]
    clock_before: Optional[int]
    sent: Tuple[Message, ...] = ()
    delivered: Tuple[Message, ...] = ()
    crashed: bool = False
    omitted_sends: frozenset = field(default_factory=frozenset)
    omitted_receives: frozenset = field(default_factory=frozenset)
    forged_sends: frozenset = field(default_factory=frozenset)

    @property
    def deviated(self) -> bool:
        """True if this record shows a process failure in this round."""
        return bool(
            self.crashed
            or self.omitted_sends
            or self.omitted_receives
            or self.forged_sends
        )


@dataclass(frozen=True)
class RoundHistory:
    """The vector of per-process records for one actual round.

    ``edges`` is the round's effective communication topology —
    ``edges[p]`` lists p's broadcast receivers (ascending, self
    included) — and stays ``None`` on the default complete graph, so
    complete-graph histories compare equal with pre-topology ones.
    """

    round_no: int
    records: Tuple[ProcessRoundRecord, ...]
    edges: Optional[Tuple[Tuple[ProcessId, ...], ...]] = None

    def __post_init__(self) -> None:
        require_positive(self.round_no, "round_no")
        for index, record in enumerate(self.records):
            require(
                record.pid == index,
                f"records must be indexed by pid; slot {index} holds pid {record.pid}",
            )

    @property
    def n(self) -> int:
        return len(self.records)

    def record(self, pid: ProcessId) -> ProcessRoundRecord:
        return self.records[pid]

    def deviators(self) -> frozenset:
        """Processes that committed a process failure during this round."""
        return frozenset(r.pid for r in self.records if r.deviated)


class ExecutionHistory:
    """A finite execution history ``H``: a sequence of round histories.

    Provides the paper's prefix/suffix decomposition (``H = H' · H''``)
    and the derived faulty set :math:`\\mathcal{F}(H, \\Pi)` — here
    recovered from the recorded deviation flags, since the simulator
    tags each deviation as it happens.

    Histories are immutable once constructed; slicing returns new
    ``ExecutionHistory`` objects sharing the underlying round tuples.
    Round numbering in slices is preserved (a suffix's first round keeps
    its actual round number), so analyses can always speak in actual
    rounds of the original execution.
    """

    def __init__(self, rounds: Sequence[RoundHistory]):
        rounds = tuple(rounds)
        require(len(rounds) > 0, "an execution history needs at least one round")
        n = rounds[0].n
        for rh in rounds:
            require(rh.n == n, "all round histories must cover the same process set")
        for prev, nxt in zip(rounds, rounds[1:]):
            require(
                nxt.round_no == prev.round_no + 1,
                f"rounds must be consecutive: {prev.round_no} then {nxt.round_no}",
            )
        self._rounds = rounds
        self._n = n

    # -- basic accessors -------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processes in the system."""
        return self._n

    @property
    def first_round(self) -> int:
        return self._rounds[0].round_no

    @property
    def last_round(self) -> int:
        return self._rounds[-1].round_no

    def __len__(self) -> int:
        return len(self._rounds)

    def __iter__(self) -> Iterator[RoundHistory]:
        return iter(self._rounds)

    def round(self, round_no: int) -> RoundHistory:
        """The round history of actual round ``round_no``."""
        index = round_no - self.first_round
        if not 0 <= index < len(self._rounds):
            raise KeyError(
                f"round {round_no} outside history "
                f"[{self.first_round}, {self.last_round}]"
            )
        return self._rounds[index]

    @property
    def processes(self) -> range:
        return range(self._n)

    # -- decomposition ---------------------------------------------------

    def prefix(self, length: int) -> "ExecutionHistory":
        """The ``length``-prefix ``H'`` of ``H = H' · H''``."""
        require(
            1 <= length <= len(self), f"prefix length {length} not in [1, {len(self)}]"
        )
        return ExecutionHistory(self._rounds[:length])

    def suffix(self, start_offset: int) -> "ExecutionHistory":
        """The suffix ``H''`` after dropping the first ``start_offset`` rounds."""
        require(
            0 <= start_offset < len(self),
            f"suffix offset {start_offset} not in [0, {len(self) - 1}]",
        )
        return ExecutionHistory(self._rounds[start_offset:])

    def window(self, first: int, last: int) -> "ExecutionHistory":
        """The sub-history covering actual rounds ``first .. last`` inclusive."""
        require(
            self.first_round <= first <= last <= self.last_round,
            f"window [{first}, {last}] outside history "
            f"[{self.first_round}, {self.last_round}]",
        )
        lo = first - self.first_round
        hi = last - self.first_round + 1
        return ExecutionHistory(self._rounds[lo:hi])

    # -- faulty / correct sets --------------------------------------------

    def faulty(self) -> frozenset:
        """:math:`\\mathcal{F}(H, \\Pi)`: processes that deviated anywhere in H."""
        out: set = set()
        for rh in self._rounds:
            out |= rh.deviators()
        return frozenset(out)

    def correct(self) -> frozenset:
        """:math:`\\mathcal{C}(H, \\Pi)`: processes that never deviated in H."""
        return frozenset(self.processes) - self.faulty()

    def faulty_by_round(self) -> "list[frozenset]":
        """Cumulative faulty sets: element ``i`` is F after round i+1.

        This is the paper's :math:`F^i` ("processes faulty by the end of
        round i", Theorem 3 proof).
        """
        out = []
        current: set = set()
        for rh in self._rounds:
            current |= rh.deviators()
            out.append(frozenset(current))
        return out

    # -- clock access ------------------------------------------------------

    def clock(self, pid: ProcessId, round_no: int) -> Optional[int]:
        """``c_p^r``: process ``pid``'s round variable at the start of round."""
        return self.round(round_no).record(pid).clock_before

    def clocks(self, round_no: int) -> "dict[ProcessId, Optional[int]]":
        """All round variables at the start of ``round_no``."""
        rh = self.round(round_no)
        return {rec.pid: rec.clock_before for rec in rh.records}

    # -- metrics -----------------------------------------------------------

    def messages_sent(self) -> int:
        return sum(len(rec.sent) for rh in self._rounds for rec in rh.records)

    def messages_delivered(self) -> int:
        return sum(len(rec.delivered) for rh in self._rounds for rec in rh.records)

    # -- misc ----------------------------------------------------------------

    def concat(self, other: "ExecutionHistory") -> "ExecutionHistory":
        """``H = self · other`` (other must continue self's numbering)."""
        return ExecutionHistory(tuple(self._rounds) + tuple(other._rounds))

    def __repr__(self) -> str:
        return (
            f"ExecutionHistory(n={self._n}, rounds="
            f"[{self.first_round}..{self.last_round}])"
        )


def renumber(history: ExecutionHistory, first_round: int = 1) -> ExecutionHistory:
    """Return a copy of ``history`` with rounds renumbered from ``first_round``.

    Useful when treating a suffix as a standalone history (the paper notes
    both halves of a decomposition are themselves histories consistent
    with the protocol).
    """
    rounds = []
    for offset, rh in enumerate(history):
        rounds.append(RoundHistory(round_no=first_round + offset, records=rh.records))
    return ExecutionHistory(rounds)
