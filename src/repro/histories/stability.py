"""Stable-coterie windows: the raw material for ``ftss-solves`` checks.

Definition 2.4 (paper): ``Π`` ftss-solves ``Σ`` with stabilization time
``r`` iff for every decomposition ``H = H1·H2·H3·H4`` with
``coterie(H1·H2) = coterie(H1·H2·H3)`` and ``|H2| >= r``, the predicate
``Σ(H3, F(H1·H2·H3))`` is satisfied.

Because the coterie is monotone non-decreasing in the prefix length
(see :mod:`.coterie`), "equal at the two cut points" is the same as
"constant over the whole span", and the quantification over all
decompositions collapses to a scan over the *maximal* constant runs of
the coterie timeline: within a maximal run starting after prefix length
``x`` and ending at prefix length ``y``, the protocol gets ``r`` rounds
of grace and ``Σ`` must hold on every sub-window of rounds
``(x + r, y]``.  (This is also exactly how the paper's own Theorem 3
proof uses the definition: "suppose the coterie remains constant from
rounds x to y ... for all rounds r with x < r <= y".)

This module finds those maximal runs; :mod:`repro.core.solvability`
evaluates problem predicates over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence

from repro.histories.coterie import coterie_timeline
from repro.histories.history import ExecutionHistory, ProcessId

__all__ = ["StableWindow", "stable_windows", "is_coterie_monotone"]


@dataclass(frozen=True)
class StableWindow:
    """A maximal run of rounds over which the coterie is constant.

    ``first_round`` / ``last_round`` are actual round numbers (inclusive)
    of the run; ``members`` is the coterie throughout the run.  With a
    stabilization time of ``r``, a problem predicate is obliged to hold
    on rounds ``first_round + r .. last_round`` (the *obligation span*),
    provided the run is longer than ``r``.
    """

    first_round: int
    last_round: int
    members: FrozenSet[ProcessId]

    @property
    def length(self) -> int:
        return self.last_round - self.first_round + 1

    def obligation_span(self, stabilization_time: int) -> "tuple[int, int] | None":
        """Rounds on which Σ must hold, or ``None`` if the run is too short.

        The first ``stabilization_time`` rounds of the window are the
        grace period (they play the role of ``H2`` in Definition 2.4).
        """
        start = self.first_round + stabilization_time
        if start > self.last_round:
            return None
        return (start, self.last_round)


def stable_windows(history: ExecutionHistory) -> List[StableWindow]:
    """Maximal constant-coterie runs of ``history``, in order.

    The runs partition the history's rounds: every round belongs to
    exactly one window.  A single-round window is possible (the coterie
    grew on consecutive rounds).
    """
    timeline = coterie_timeline(history)
    return windows_from_timeline(timeline, history.first_round)


def windows_from_timeline(
    timeline: Sequence[FrozenSet[ProcessId]], first_round: int
) -> List[StableWindow]:
    """Group a coterie timeline into maximal constant runs."""
    windows: List[StableWindow] = []
    if not timeline:
        return windows
    run_start = 0
    for i in range(1, len(timeline) + 1):
        if i == len(timeline) or timeline[i] != timeline[run_start]:
            windows.append(
                StableWindow(
                    first_round=first_round + run_start,
                    last_round=first_round + i - 1,
                    members=timeline[run_start],
                )
            )
            run_start = i
    return windows


def is_coterie_monotone(history: ExecutionHistory) -> bool:
    """Check the monotonicity invariant the stability scan relies on.

    Returns True iff each prefix's coterie is a superset of the previous
    prefix's.  Exposed for property-based testing; a False here would
    invalidate the window-scan reduction of Definition 2.4.
    """
    timeline = coterie_timeline(history)
    return all(prev <= nxt for prev, nxt in zip(timeline, timeline[1:]))
