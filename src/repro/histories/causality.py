"""Lamport happened-before over recorded histories.

The paper writes ``p ->_H q`` when some event executed by ``p``
happened-before (in Lamport's sense [Lam78]) some event executed by
``q`` in history ``H``.  For round-based executions with recorded
deliveries this reduces to reachability through the delivery graph, and
can be maintained incrementally with one *knowledge set* per process:

    ``know[q]`` = the set of processes ``p`` with ``p ->_H q`` so far.

Update rule, applied once per round in order:

- a process that takes any step this round influences itself
  (and the paper additionally guarantees every process receives its own
  broadcast), so ``q ∈ know[q]`` once ``q`` has acted;
- when ``q`` receives a message sent by ``u`` *this* round, everything
  that had influenced ``u`` by the **end of the previous round** — plus
  ``u`` itself — now influences ``q``.  Influence received by ``u``
  later in the same round does *not* flow through the send, because
  within a round every send event precedes every receive event.

Crashed processes stop accumulating influence (they execute no further
events), but the influence they exerted earlier persists — exactly the
behaviour needed for the paper's Theorem 1/3 scenarios, where a faulty
process's single revealed message drags its stale influence into the
coterie.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.histories.history import ExecutionHistory, ProcessId, RoundHistory

__all__ = ["CausalityTracker", "knowledge_timeline", "happened_before"]


class CausalityTracker:
    """Incrementally maintains ``know[q] = {p : p ->_H q}`` round by round.

    The synchronous engine can feed rounds as they are produced;
    analyses over a finished history use :func:`knowledge_timeline`.

    Messages may be delivered in a later round than they were sent (the
    not-perfectly-synchronized engine mode): the influence a message
    transfers is the sender's knowledge *at send time*, so the tracker
    keeps per-round snapshots and looks up ``message.sent_round``.  A
    message sent before the tracked window contributes only its
    sender's identity (a sound under-approximation for sliced
    histories).
    """

    def __init__(self, n: int):
        self._n = n
        self._know: List[set] = [set() for _ in range(n)]
        self._acted: List[bool] = [False] * n
        #: know-sets as of the end of each folded round, for send-time lookups.
        self._round_snapshots: List[List[FrozenSet[ProcessId]]] = []
        self._first_round: "int | None" = None

    @property
    def n(self) -> int:
        return self._n

    def know(self, pid: ProcessId) -> FrozenSet[ProcessId]:
        """The current influence set of ``pid`` (who happened-before it)."""
        return frozenset(self._know[pid])

    def snapshot(self) -> Dict[ProcessId, FrozenSet[ProcessId]]:
        return {pid: frozenset(s) for pid, s in enumerate(self._know)}

    def _knowledge_at_send(self, sender: ProcessId, sent_round: int) -> FrozenSet:
        """The sender's influence set just before its send in ``sent_round``.

        Within a round every send precedes every receive, so the send
        carries the knowledge held at the *end of the previous round*.
        """
        if self._first_round is None:
            return frozenset()
        index = sent_round - self._first_round - 1
        if index < 0:
            return frozenset()
        index = min(index, len(self._round_snapshots) - 1)
        return self._round_snapshots[index][sender]

    def advance(self, round_history: RoundHistory) -> None:
        """Fold one round's events into the knowledge sets."""
        if round_history.n != self._n:
            raise ValueError(
                f"round covers {round_history.n} processes, tracker covers {self._n}"
            )
        if self._first_round is None:
            self._first_round = round_history.round_no
        # Influence available at the *start* of this round (i.e. end of the
        # previous round).  Copy before mutating.
        before = [frozenset(s) for s in self._know]
        current_index = round_history.round_no - self._first_round

        for record in round_history.records:
            pid = record.pid
            took_step = (
                record.state_before is not None
                or bool(record.sent)
                or bool(record.delivered)
            )
            if took_step:
                # Program order: an acting process influences itself.
                self._know[pid].add(pid)
                self._acted[pid] = True
            for message in record.delivered:
                sender = message.sender
                self._know[pid].add(sender)
                if message.sent_round == round_history.round_no:
                    self._know[pid] |= before[sender]
                else:
                    self._know[pid] |= self._knowledge_at_send(
                        sender, message.sent_round
                    )

        assert current_index == len(self._round_snapshots)
        self._round_snapshots.append([frozenset(s) for s in self._know])

    def happened_before(self, p: ProcessId, q: ProcessId) -> bool:
        """``p ->_H q`` over the rounds advanced so far."""
        return p in self._know[q]


def knowledge_timeline(
    history: ExecutionHistory,
) -> List[Dict[ProcessId, FrozenSet[ProcessId]]]:
    """Knowledge sets after each round of ``history``.

    Element ``i`` is the snapshot after folding rounds
    ``first_round .. first_round + i`` — i.e. the knowledge sets of the
    ``(i+1)``-prefix of ``history``.
    """
    tracker = CausalityTracker(history.n)
    timeline = []
    for round_history in history:
        tracker.advance(round_history)
        timeline.append(tracker.snapshot())
    return timeline


def happened_before(history: ExecutionHistory, p: ProcessId, q: ProcessId) -> bool:
    """``p ->_H q`` for a finished history (one-shot convenience)."""
    tracker = CausalityTracker(history.n)
    for round_history in history:
        tracker.advance(round_history)
    return tracker.happened_before(p, q)
