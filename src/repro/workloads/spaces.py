"""Curated fault-plan spaces for the exploration targets.

Each space bounds the adversary the way the paper's model does —
``max_crashes + max_omissions < n`` so at least one process stays
correct, omission windows inside the horizon, corruption at most at a
mid-run round — and is sized so the default exploration budgets give
either full enumeration (the impossibility targets, where the engine
must *find* the paper's counterexample shapes) or a representative
sample (the protocol targets, where every plan must hold).

These are data, not logic: the compilation of a
:class:`~repro.explore.space.PlanSpec` into kernel fault plans lives in
:mod:`repro.explore.space`, the protocols and predicates in
:mod:`repro.explore.targets`.
"""

from __future__ import annotations

from repro.explore.space import PlanSpace

__all__ = [
    "FIG1_SPACE",
    "FIG3_SPACE",
    "FIG3_SMOKE_SPACE",
    "FIG4_SPACE",
    "THM1_SPACE",
    "THM2_SPACE",
    "UNISON_SPACE",
    "VERIFY_FIG1_SPACE",
    "VERIFY_FIG1_SMOKE_SPACE",
    "VERIFY_FIG3_SPACE",
    "VERIFY_UNISON_SPACE",
]

#: Figure 1 (round agreement, ftss@1): crashes, one-process omission
#: campaigns, adversarial skews, random corruption at start and mid-run.
FIG1_SPACE = PlanSpace(
    n=4,
    rounds=10,
    crash_rounds=(1, 3, 6),
    max_crashes=2,
    omission_windows=((2, 4), (5, 7)),
    omission_kinds=("send", "receive", "general"),
    max_omissions=1,
    skew_values=(9, 73),
    max_skews=2,
    corruption_choices=(False, True),
    corruption_round_choices=((), (5,)),
)

#: Figure 3 (compiled FloodMin, ftss@final_round): the compiler's fault
#: model is crash (FloodMin ft-solves consensus for crash faults), plus
#: the systemic failures the compilation is supposed to absorb.
FIG3_SPACE = PlanSpace(
    n=4,
    rounds=20,
    crash_rounds=(1, 4, 9),
    max_crashes=1,
    skew_values=(5, 17),
    max_skews=2,
    corruption_choices=(False, True),
    corruption_round_choices=((), (9,)),
    seeds=(0, 1),
)

#: The seeded-corruption slice of FIG3_SPACE used by ``--smoke``: every
#: plan scrambles the initial states, so the witness artifact is always
#: a corruption scenario.
FIG3_SMOKE_SPACE = PlanSpace(
    n=4,
    rounds=20,
    crash_rounds=(4,),
    max_crashes=1,
    skew_values=(17,),
    max_skews=1,
    corruption_choices=(True,),
)

#: Figure 4 (◇W→◇S transformation): the asynchronous substrate reads
#: ``rounds`` as the virtual-time horizon and honors GST placement.
#: Crashes and initial corruption only — the paper's Section 3 model.
FIG4_SPACE = PlanSpace(
    n=4,
    rounds=220,
    crash_rounds=(10, 25),
    max_crashes=2,
    corruption_choices=(False, True),
    gst_choices=(0, 30),
    seeds=(0, 1),
)

#: Theorem 1 (the tentative definition is too weak): small enough for
#: exhaustive enumeration.  The counterexample the engine must find and
#: shrink to: one process skewed ahead by the systemic failure and kept
#: silent through the candidate grace period, then revealed.
THM1_SPACE = PlanSpace(
    n=2,
    rounds=7,
    omission_windows=((1, 1), (1, 2), (1, 3), (2, 3), (1, 4)),
    omission_kinds=("general",),
    max_omissions=1,
    skew_values=(2, 5, 101),
    max_skews=1,
)

#: Unison under churn (topology layer): min-rule unison on a ring with
#: join/leave churn schedules and systemic corruption.  Every plan must
#: hold — after the last churn or corruption event, the processes still
#: attached must re-agree within a ring diameter.  A window with
#: ``rejoin_round=None`` detaches a process for the rest of the run
#: (it is then exempt from the agreement obligation).
UNISON_SPACE = PlanSpace(
    n=6,
    rounds=16,
    corruption_choices=(False, True),
    corruption_round_choices=((), (4,)),
    churn_windows=((2, 6), (3, 9), (5, None)),
    max_churn=1,
    seeds=(0, 1),
)

#: The verification plane's Fig 1 instance: small enough that
#: :mod:`repro.verify` can walk *every* plan (the full FIG1_SPACE at
#: n=4 has ~221k specs — sampling territory), yet it still crosses
#: every fault axis the paper's Theorem 3 quantifies over: crashes,
#: one-process omission campaigns of each kind, adversarial skews, and
#: corruption at start and mid-run.
VERIFY_FIG1_SPACE = PlanSpace(
    n=3,
    rounds=6,
    crash_rounds=(1, 3),
    max_crashes=1,
    omission_windows=((1, 2), (2, 4)),
    omission_kinds=("send", "general"),
    max_omissions=1,
    skew_values=(2, 9),
    max_skews=1,
    corruption_choices=(False, True),
    corruption_round_choices=((), (3,)),
)

#: The CI slice of the verify Fig 1 instance (32 raw plans): crashes,
#: one skew, and seeded corruption — every feature the SMT engine
#: models, so the explicit/SMT engine-agreement gate runs on it.
VERIFY_FIG1_SMOKE_SPACE = PlanSpace(
    n=3,
    rounds=5,
    crash_rounds=(1,),
    max_crashes=1,
    skew_values=(7,),
    max_skews=1,
    corruption_choices=(False, True),
)

#: The verification plane's Fig 3 instance: one crash × one skew ×
#: corruption toggle over the compiled FloodMin — 50 plans, exhaustive.
VERIFY_FIG3_SPACE = PlanSpace(
    n=4,
    rounds=20,
    crash_rounds=(4,),
    max_crashes=1,
    skew_values=(17,),
    max_skews=1,
    corruption_choices=(False, True),
)

#: The verification plane's MinUnison instance: a 4-ring (diameter 2)
#: under every single-process churn window × corruption placement —
#: 36 plans, exhaustive, proving the stabilization≤diameter law on the
#: whole space rather than a sample.
VERIFY_UNISON_SPACE = PlanSpace(
    n=4,
    rounds=12,
    corruption_choices=(False, True),
    corruption_round_choices=((), (3,)),
    churn_windows=((2, 5), (3, None)),
    max_churn=1,
)

#: Theorem 2 (uniformity is impossible with process failures): send /
#: general omission campaigns against a halting-rule protocol.  The
#: counterexample: a send-omitting peer isolates the correct pivot,
#: whose halting rule then violates the rate condition.
THM2_SPACE = PlanSpace(
    n=2,
    rounds=12,
    omission_windows=((1, 6), (1, 12)),
    omission_kinds=("send", "general"),
    max_omissions=1,
    skew_values=(7,),
    max_skews=1,
)
