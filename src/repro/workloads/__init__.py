"""Workload generators: adversary schedules and corruption patterns.

The theorems quantify over *all* failure patterns; experiments need
both broad randomized campaigns (:class:`~repro.sync.adversary.RandomAdversary`,
:class:`~repro.sync.corruption.RandomCorruption`) and the specific
worst-case patterns the paper's arguments hinge on.  This package holds
the latter:

- :class:`LateRevealAdversary` — a general-omission process that hides
  a value from everyone and reveals it to a single victim at a chosen
  cadence: the stale-message attack that makes the compiler's suspect
  sets load-bearing (ABL-SUSPECT).
- :class:`ConsensusDeadlockCorruption` — corrupts only the consensus
  layer (send-flags claim messages were already sent; phases point
  mid-protocol) while leaving the embedded failure detector clean: the
  pure [KP90] deadlock scenario for the retransmission ablation
  (ABL-RETX), with no corrupted-suspicion side channel to kick the
  system awake.
- helpers for building crash/corruption sweeps used by the benches.
"""

from repro.workloads.scenarios import (
    ConsensusDeadlockCorruption,
    LateRevealAdversary,
    clock_skew_pattern,
    crash_schedule,
)

__all__ = [
    "ConsensusDeadlockCorruption",
    "LateRevealAdversary",
    "clock_skew_pattern",
    "crash_schedule",
]
