"""Worst-case adversary schedules and targeted corruption patterns."""

from __future__ import annotations

import random
from typing import Any, Dict, FrozenSet, Mapping, Optional

from repro.sync.adversary import Adversary, RoundFaultPlan
from repro.sync.corruption import CorruptionPlan
from repro.util.rng import make_rng
from repro.util.validation import require, require_non_negative, require_positive

__all__ = [
    "LateRevealAdversary",
    "ConsensusDeadlockCorruption",
    "clock_skew_pattern",
    "crash_schedule",
]


class LateRevealAdversary(Adversary):
    """A general-omission process that hides its value, then leaks it late.

    The attacker ``hider`` send-omits its broadcast to *everyone* in
    every round except rounds ``r ≡ offset (mod period)``, in which the
    broadcast reaches only ``victim``.  (It never receive-omits, so its
    round variable stays merged with the pack and its messages carry
    current tags.)

    Against a compiled flooding protocol with ``period = final_round``
    and the right ``offset``, the leak lands in an iteration's *final*
    protocol round: the victim learns a value nobody else can relay in
    time.  With suspect sets, the victim has long since suspected the
    hider (missing messages are sticky suspicion within an iteration)
    and discards the leak; without them, the victim merges it and
    decides differently from everyone else — Σ⁺ falsified exactly as
    §2.4 warns for out-of-date/stale senders.  The ABL-SUSPECT bench
    sweeps ``offset`` over the period.
    """

    def __init__(
        self,
        hider: int,
        victim: int,
        n: int,
        period: int,
        offset: int = 0,
    ):
        super().__init__(f=1)
        require(hider != victim, "the hider leaks to somebody else")
        require(0 <= hider < n and 0 <= victim < n, "hider/victim must be pids")
        require_positive(period, "period")
        require_non_negative(offset, "offset")
        self.hider = hider
        self.victim = victim
        self.n = n
        self.period = period
        self.offset = offset % period

    def plan_round(
        self,
        round_no: int,
        alive: FrozenSet[int],
        faulty_so_far: FrozenSet[int],
    ) -> RoundFaultPlan:
        if self.hider not in alive:
            return RoundFaultPlan.empty()
        everyone = frozenset(range(self.n)) - {self.hider}
        if round_no % self.period == self.offset:
            dropped = everyone - {self.victim}
        else:
            dropped = everyone
        return RoundFaultPlan(send_omissions={self.hider: dropped})


class ConsensusDeadlockCorruption(CorruptionPlan):
    """The [KP90] deadlock seed, surgically.

    Corrupts only the consensus layer of a
    :class:`~repro.detectors.consensus.CTConsensus` state: send-flags
    claim every message was already sent, phases are scattered
    mid-protocol, instance/round counters disagree — while the
    embedded failure detector's sub-state stays *clean* (everyone
    alive, version counters zero).  Without the clean-detector
    restriction, planted false suspicions trigger nacks that kick the
    system awake and mask the deadlock the retransmission exists to
    break.
    """

    def __init__(self, seed: int, all_waiting: bool = False, instance_spread: int = 40):
        self._seed = seed
        self._all_waiting = all_waiting
        self._instance_spread = instance_spread

    def corrupt(
        self,
        protocol,
        states: Mapping[int, Optional[Dict[str, Any]]],
        n: int,
    ) -> Dict[int, Optional[Dict[str, Any]]]:
        rng = make_rng(self._seed, "consensus-deadlock")
        out: Dict[int, Optional[Dict[str, Any]]] = {}
        for pid in sorted(states):
            state = states[pid]
            if state is None:
                out[pid] = None
                continue
            fresh = dict(state)
            fresh["instance"] = rng.randrange(0, self._instance_spread)
            fresh["round"] = rng.randrange(0, 3 * n)
            fresh["phase"] = "wait" if self._all_waiting else rng.choice(["est", "wait"])
            fresh["estimate"] = rng.randrange(0, 20)
            fresh["ts"] = rng.randrange(0, 10)
            fresh["sent_est"] = True  # "I already sent it" — the deadlock
            fresh["est_received"] = {}
            fresh["proposed"] = None
            fresh["acks"], fresh["nacks"] = [], []
            fresh["latest_decision"] = None
            fresh["buffer"] = []
            # fd sub-state deliberately left clean.
            out[pid] = fresh
        return out


# ---------------------------------------------------------------------------
# Byzantine payload mutators (for the EXT-BYZ experiment: §1.2's
# systemic-vs-malicious comparison).  Each takes (rng, true payload) and
# returns the lie; all are shape-preserving so protocols keep parsing.
# ---------------------------------------------------------------------------


def flip_binary_fields(rng, payload):
    """Lie for phase-queen: flip the binary ``value``/``majority`` fields.

    Payloads are the full-information ``(pid, state)`` pairs of
    :class:`~repro.core.canonical.CanonicalRunner`.
    """
    sender, state = payload
    lie = dict(state)
    for key in ("value", "majority"):
        if lie.get(key) in (0, 1):
            lie[key] = 1 - lie[key]
    if "inner" in lie and isinstance(lie["inner"], dict):
        inner = dict(lie["inner"])
        for key in ("value", "majority"):
            if inner.get(key) in (0, 1):
                inner[key] = 1 - inner[key]
        lie["inner"] = inner
    return (sender, lie)


def poison_floodmin(rng, payload):
    """Lie for FloodMin: smuggle a bogus minimum into the value set."""
    sender, state = payload
    lie = dict(state)
    if "values" in lie:
        lie["values"] = frozenset(lie["values"]) | {-999}
    if "inner" in lie and isinstance(lie["inner"], dict):
        inner = dict(lie["inner"])
        if "values" in inner:
            inner["values"] = frozenset(inner["values"]) | {-999}
        lie["inner"] = inner
    return (sender, lie)


def forge_clock(rng, payload):
    """Lie for round agreement: claim a round number far in the future."""
    if isinstance(payload, int):
        return payload + rng.randrange(10, 1000)
    return payload


def clock_skew_pattern(
    n: int, seed: int, magnitude: int = 1 << 20
) -> Dict[int, int]:
    """Random per-process clock values for skew corruption sweeps."""
    rng = make_rng(seed, "clock-skew")
    return {pid: rng.randrange(0, magnitude) for pid in range(n)}


def crash_schedule(
    n: int,
    f: int,
    seed: int,
    horizon: float,
    earliest: float = 0.0,
) -> Dict[int, float]:
    """Pick ``f`` victims and crash times in ``[earliest, horizon)``."""
    require(0 <= f <= n, f"need 0 <= f <= n, got f={f}, n={n}")
    rng = make_rng(seed, "crash-schedule")
    victims = rng.sample(range(n), f)
    return {pid: rng.uniform(earliest, horizon) for pid in victims}


def random_crash_rounds(
    n: int, f: int, seed: int, max_round: int
) -> Dict[int, int]:
    """Synchronous flavour: ``f`` victims with crash rounds in [1, max_round]."""
    rng = make_rng(seed, "crash-rounds")
    victims = rng.sample(range(n), f)
    return {pid: rng.randrange(1, max_round + 1) for pid in victims}
