"""The fault-plan space: declarative specs, enumeration, fuzzing, dedup.

A :class:`PlanSpec` is a *declarative* fault scenario — plain integers
and tuples, picklable and JSON-able — in contrast to the kernel's
:class:`~repro.kernel.faults.FaultPlan`, which may carry arbitrary
adversary objects.  The spec is the unit the exploration engine
enumerates, fuzzes, dedupes, shrinks, and writes into replay artifacts;
:meth:`PlanSpec.fault_plan` compiles it into the kernel vocabulary for
either substrate.

A :class:`PlanSpace` describes a set of specs by its atoms (candidate
crash rounds, omission windows, skew values, corruption toggles, GST
placements) and bounds (how many of each).  Small spaces are enumerated
exhaustively in a deterministic order; large ones are sampled by a
seeded random walk.  Both go through :func:`dedupe`, which normalizes
each spec to a canonical form under process-id permutation so that
symmetric plans run once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.kernel.faults import FaultPlan
from repro.kernel.topology import ChurnEvent, ChurnSchedule
from repro.sync.adversary import RoundFaultPlan, ScriptedAdversary
from repro.sync.corruption import (
    ClockSkewCorruption,
    CorruptionPlan,
    RandomCorruption,
)
from repro.util.rng import derive_seed, make_rng
from repro.util.validation import require, require_positive, require_process_count

__all__ = [
    "ChurnSpec",
    "ComposedCorruption",
    "OmissionSpec",
    "PlanSpace",
    "PlanSpec",
    "canonical_key",
    "dedupe",
]

#: Omission campaign kinds (subsets of the paper's general omission).
OMISSION_KINDS = ("send", "receive", "general")

#: Above this system size exact canonicalization (min over all pid
#: permutations) is skipped and dedup falls back to exact-duplicate
#: removal only.
MAX_CANONICAL_N = 7


class ComposedCorruption(CorruptionPlan):
    """Apply several corruption plans in sequence (later plans last)."""

    def __init__(self, parts: Iterable[CorruptionPlan]):
        self._parts = tuple(parts)

    def corrupt(self, protocol, states, n):
        out = {pid: None if s is None else dict(s) for pid, s in states.items()}
        for part in self._parts:
            out = part.corrupt(protocol, out, n)
        return out


@dataclass(frozen=True)
class OmissionSpec:
    """One omission campaign: a process misbehaves over a round window.

    ``targets=None`` means "everyone else" (the paper's silence
    pattern); an explicit tuple restricts the campaign to those peers.
    ``kind`` is one of :data:`OMISSION_KINDS`; ``general`` omits both
    directions (the silenced process still hears itself — self-delivery
    is sacred).
    """

    pid: int
    kind: str
    first_round: int
    last_round: int
    targets: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        require(self.kind in OMISSION_KINDS, f"unknown omission kind {self.kind!r}")
        require_positive(self.first_round, "first_round")
        require(
            self.last_round >= self.first_round,
            f"omission window [{self.first_round}, {self.last_round}] is empty",
        )

    def rounds(self) -> range:
        return range(self.first_round, self.last_round + 1)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "pid": self.pid,
            "kind": self.kind,
            "first_round": self.first_round,
            "last_round": self.last_round,
            "targets": None if self.targets is None else list(self.targets),
        }

    @staticmethod
    def from_jsonable(data: Dict[str, object]) -> "OmissionSpec":
        targets = data.get("targets")
        return OmissionSpec(
            pid=int(data["pid"]),
            kind=str(data["kind"]),
            first_round=int(data["first_round"]),
            last_round=int(data["last_round"]),
            targets=None if targets is None else tuple(int(t) for t in targets),
        )


@dataclass(frozen=True)
class ChurnSpec:
    """One churn episode: a process detaches, and optionally rejoins.

    Compiles to ``leave``/``join`` events on the plan's
    :class:`~repro.kernel.topology.ChurnSchedule`.  Churn is a topology
    change, not a process failure — the detached process keeps
    executing (self-delivery only) and never enters the faulty set, so
    churn specs do not count against the fault budget.
    """

    pid: int
    leave_round: int
    rejoin_round: Optional[int] = None

    def __post_init__(self):
        require_positive(self.leave_round, "leave_round")
        if self.rejoin_round is not None:
            require(
                self.rejoin_round > self.leave_round,
                f"rejoin round {self.rejoin_round} must come after "
                f"leave round {self.leave_round}",
            )

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "pid": self.pid,
            "leave_round": self.leave_round,
            "rejoin_round": self.rejoin_round,
        }

    @staticmethod
    def from_jsonable(data: Dict[str, object]) -> "ChurnSpec":
        rejoin = data.get("rejoin_round")
        return ChurnSpec(
            pid=int(data["pid"]),
            leave_round=int(data["leave_round"]),
            rejoin_round=None if rejoin is None else int(rejoin),
        )


@dataclass(frozen=True)
class PlanSpec:
    """One declarative fault scenario, compilable to a kernel plan.

    Attributes
    ----------
    n, rounds:
        System size and horizon.  The synchronous targets read
        ``rounds`` as actual rounds; the asynchronous target reads it
        as the virtual-time horizon.
    seed:
        Master seed for every randomized ingredient the spec enables
        (random corruption, scheduler delays); sub-streams are derived
        with :func:`repro.util.rng.derive_seed`, so a spec fully
        determines its run.
    crashes:
        ``(pid, time)`` pairs (clean crashes, both substrates).
    omissions:
        Omission campaigns (synchronous substrate only).
    clock_skews:
        ``(pid, clock)`` pairs: initial round-variable corruption — the
        paper's minimal systemic failure.
    random_corruption:
        Scramble *every* process's initial state from the protocol's
        arbitrary-state generator (the headline self-stabilization
        regime), seeded from ``seed``.
    corruption_rounds:
        Mid-run rounds at which random corruption strikes again.
    gst:
        Global stabilization time (asynchronous substrate only).
    churn:
        :class:`ChurnSpec` episodes compiled into the plan's churn
        schedule (topology changes; orthogonal to the fault budget).
    """

    n: int
    rounds: int
    seed: int = 0
    crashes: Tuple[Tuple[int, int], ...] = ()
    omissions: Tuple[OmissionSpec, ...] = ()
    clock_skews: Tuple[Tuple[int, int], ...] = ()
    random_corruption: bool = False
    corruption_rounds: Tuple[int, ...] = ()
    gst: int = 0
    churn: Tuple[ChurnSpec, ...] = ()

    def __post_init__(self):
        require_process_count(self.n)
        require_positive(self.rounds, "rounds")
        pids_seen = set()
        for pid, time in self.crashes:
            require(0 <= pid < self.n, f"crash pid {pid} out of range")
            require(pid not in pids_seen, f"pid {pid} crashes twice")
            require_positive(time, "crash time")
            pids_seen.add(pid)
        for om in self.omissions:
            require(0 <= om.pid < self.n, f"omission pid {om.pid} out of range")
            require(
                om.last_round <= self.rounds,
                f"omission window ends at {om.last_round} > rounds {self.rounds}",
            )
        skewed = set()
        for pid, _clock in self.clock_skews:
            require(0 <= pid < self.n, f"skew pid {pid} out of range")
            require(pid not in skewed, f"pid {pid} skewed twice")
            skewed.add(pid)
        for r in self.corruption_rounds:
            require(1 <= r <= self.rounds, f"corruption round {r} out of range")
        churned = set()
        for ch in self.churn:
            require(0 <= ch.pid < self.n, f"churn pid {ch.pid} out of range")
            require(ch.pid not in churned, f"pid {ch.pid} churns twice")
            require(
                ch.leave_round <= self.rounds,
                f"churn leave round {ch.leave_round} > rounds {self.rounds}",
            )
            churned.add(ch.pid)

    # -- derived properties --------------------------------------------------

    @property
    def fault_budget(self) -> int:
        """Distinct processes this spec makes faulty (process failures)."""
        return len({pid for pid, _ in self.crashes} | {o.pid for o in self.omissions})

    @property
    def is_symmetric_instance(self) -> bool:
        """Whether pid relabeling preserves the spec's semantics.

        Seeded random corruption draws per-pid values in pid order, so a
        relabeled spec would corrupt *differently* — such specs are only
        deduped as exact duplicates, never up to symmetry.
        """
        return not self.random_corruption and not self.corruption_rounds

    # -- compilation to the kernel vocabulary --------------------------------

    def _omission_adversary(self) -> Optional[ScriptedAdversary]:
        if not self.omissions:
            return None
        script: Dict[int, RoundFaultPlan] = {}
        everyone = frozenset(range(self.n))
        for om in self.omissions:
            others = (
                everyone - {om.pid}
                if om.targets is None
                else frozenset(om.targets) - {om.pid}
            )
            for round_no in om.rounds():
                plan = script.setdefault(round_no, RoundFaultPlan())
                if om.kind in ("send", "general"):
                    merged = plan.send_omissions.get(om.pid, frozenset()) | others
                    plan.send_omissions[om.pid] = merged
                if om.kind in ("receive", "general"):
                    merged = plan.receive_omissions.get(om.pid, frozenset()) | others
                    plan.receive_omissions[om.pid] = merged
        return ScriptedAdversary(f=len({o.pid for o in self.omissions}), script=script)

    def _initial_corruption(self) -> Optional[CorruptionPlan]:
        parts: List[CorruptionPlan] = []
        if self.random_corruption:
            parts.append(RandomCorruption(seed=derive_seed(self.seed, "explore:init")))
        if self.clock_skews:
            parts.append(ClockSkewCorruption(dict(self.clock_skews)))
        if not parts:
            return None
        return parts[0] if len(parts) == 1 else ComposedCorruption(parts)

    def _churn_schedule(self) -> Optional[ChurnSchedule]:
        if not self.churn:
            return None
        events: List[ChurnEvent] = []
        for ch in self.churn:
            events.append(ChurnEvent(ch.leave_round, "leave", pids=(ch.pid,)))
            if ch.rejoin_round is not None:
                events.append(ChurnEvent(ch.rejoin_round, "join", pids=(ch.pid,)))
        return ChurnSchedule(tuple(events))

    def fault_plan(self) -> FaultPlan:
        """Compile the spec into the kernel's unified fault plan."""
        mid = {
            r: RandomCorruption(seed=derive_seed(self.seed, f"explore:mid:{r}"))
            for r in self.corruption_rounds
        }
        return FaultPlan(
            crashes={pid: time for pid, time in self.crashes},
            omissions=self._omission_adversary(),
            initial_corruption=self._initial_corruption(),
            mid_corruptions=mid,
            gst=float(self.gst),
            f=self.fault_budget or None,
            churn=self._churn_schedule(),
        )

    # -- serialization -------------------------------------------------------

    def to_jsonable(self) -> Dict[str, object]:
        data = {
            "n": self.n,
            "rounds": self.rounds,
            "seed": self.seed,
            "crashes": [list(pair) for pair in self.crashes],
            "omissions": [om.to_jsonable() for om in self.omissions],
            "clock_skews": [list(pair) for pair in self.clock_skews],
            "random_corruption": self.random_corruption,
            "corruption_rounds": list(self.corruption_rounds),
            "gst": self.gst,
        }
        if self.churn:
            # Emitted only when present: churn-free artifacts stay
            # byte-identical to the pre-topology schema.
            data["churn"] = [ch.to_jsonable() for ch in self.churn]
        return data

    @staticmethod
    def from_jsonable(data: Dict[str, object]) -> "PlanSpec":
        return PlanSpec(
            n=int(data["n"]),
            rounds=int(data["rounds"]),
            seed=int(data.get("seed", 0)),
            crashes=tuple(
                (int(pid), int(time)) for pid, time in data.get("crashes", ())
            ),
            omissions=tuple(
                OmissionSpec.from_jsonable(om) for om in data.get("omissions", ())
            ),
            clock_skews=tuple(
                (int(pid), int(clock)) for pid, clock in data.get("clock_skews", ())
            ),
            random_corruption=bool(data.get("random_corruption", False)),
            corruption_rounds=tuple(int(r) for r in data.get("corruption_rounds", ())),
            gst=int(data.get("gst", 0)),
            churn=tuple(
                ChurnSpec.from_jsonable(ch) for ch in data.get("churn", ())
            ),
        )

    def sort_key(self) -> tuple:
        """A total order on specs (used for canonicalization)."""
        return (
            self.n,
            self.rounds,
            self.seed,
            tuple(sorted(self.crashes)),
            tuple(
                sorted(
                    (o.pid, o.kind, o.first_round, o.last_round, o.targets or ())
                    for o in self.omissions
                )
            ),
            tuple(sorted(self.clock_skews)),
            self.random_corruption,
            self.corruption_rounds,
            self.gst,
            tuple(
                sorted(
                    (ch.pid, ch.leave_round, ch.rejoin_round or 0)
                    for ch in self.churn
                )
            ),
        )


def _relabel(spec: PlanSpec, perm: Tuple[int, ...]) -> PlanSpec:
    """The same spec with process ids mapped through ``perm[old] = new``."""
    return replace(
        spec,
        crashes=tuple(sorted((perm[pid], t) for pid, t in spec.crashes)),
        omissions=tuple(
            sorted(
                (
                    replace(
                        om,
                        pid=perm[om.pid],
                        targets=None
                        if om.targets is None
                        else tuple(sorted(perm[t] for t in om.targets)),
                    )
                    for om in spec.omissions
                ),
                key=lambda o: (o.pid, o.kind, o.first_round, o.last_round),
            )
        ),
        clock_skews=tuple(sorted((perm[pid], c) for pid, c in spec.clock_skews)),
        churn=tuple(
            sorted(
                (replace(ch, pid=perm[ch.pid]) for ch in spec.churn),
                key=lambda c: c.pid,
            )
        ),
    )


def canonical_key(spec: PlanSpec, symmetric: bool = True) -> tuple:
    """A key equal for specs identical up to process-id relabeling.

    Sound only when the target treats all processes alike
    (``symmetric=True`` and the spec carries no seeded per-pid
    randomness); otherwise the key degrades to the spec itself, deduping
    exact duplicates only.  Exact canonicalization minimizes over all
    ``n!`` permutations, so it is gated to ``n <= MAX_CANONICAL_N``.
    """
    if (
        not symmetric
        or not spec.is_symmetric_instance
        or spec.n > MAX_CANONICAL_N
    ):
        return spec.sort_key()
    touched = sorted(
        {pid for pid, _ in spec.crashes}
        | {o.pid for o in spec.omissions}
        | {t for o in spec.omissions if o.targets for t in o.targets}
        | {pid for pid, _ in spec.clock_skews}
        | {ch.pid for ch in spec.churn}
    )
    if not touched:
        return spec.sort_key()
    best = None
    for perm in itertools.permutations(range(spec.n)):
        key = _relabel(spec, perm).sort_key()
        if best is None or key < best:
            best = key
    return best


def dedupe(
    specs: Iterable[PlanSpec], symmetric: bool = True
) -> "Tuple[List[PlanSpec], int]":
    """Drop specs equivalent to an earlier one; keep first occurrences.

    Returns ``(kept, dropped_count)``.  Order is preserved, so the
    surviving list (and everything downstream) is deterministic.
    """
    seen = set()
    kept: List[PlanSpec] = []
    dropped = 0
    for spec in specs:
        key = canonical_key(spec, symmetric=symmetric)
        if key in seen:
            dropped += 1
            continue
        seen.add(key)
        kept.append(spec)
    return kept, dropped


@dataclass(frozen=True)
class PlanSpace:
    """A set of fault plans, described by its atoms and bounds.

    Enumeration iterates the product of all choices in a fixed
    deterministic order (crash assignments × omission campaigns × skew
    assignments × corruption toggles × GST placements); sampling draws
    each ingredient independently from the same atoms.
    """

    n: int
    rounds: int
    crash_rounds: Tuple[int, ...] = ()
    max_crashes: int = 0
    omission_windows: Tuple[Tuple[int, int], ...] = ()
    omission_kinds: Tuple[str, ...] = ("general",)
    max_omissions: int = 0
    skew_values: Tuple[int, ...] = ()
    max_skews: int = 0
    corruption_choices: Tuple[bool, ...] = (False,)
    corruption_round_choices: Tuple[Tuple[int, ...], ...] = ((),)
    gst_choices: Tuple[int, ...] = (0,)
    seeds: Tuple[int, ...] = (0,)
    churn_windows: Tuple[Tuple[int, Optional[int]], ...] = ()
    max_churn: int = 0

    def __post_init__(self):
        require_process_count(self.n)
        require_positive(self.rounds, "rounds")
        require(
            self.max_crashes + self.max_omissions < self.n,
            "the fault budget must leave at least one correct process",
        )
        for kind in self.omission_kinds:
            require(kind in OMISSION_KINDS, f"unknown omission kind {kind!r}")

    # -- exhaustive enumeration ----------------------------------------------

    def _crash_assignments(self) -> Iterator[Tuple[Tuple[int, int], ...]]:
        yield ()
        for k in range(1, self.max_crashes + 1):
            for pids in itertools.combinations(range(self.n), k):
                for times in itertools.product(self.crash_rounds, repeat=k):
                    yield tuple(zip(pids, times))

    def _omission_assignments(self) -> Iterator[Tuple[OmissionSpec, ...]]:
        yield ()
        campaigns = [
            (kind, window)
            for kind in self.omission_kinds
            for window in self.omission_windows
        ]
        for k in range(1, self.max_omissions + 1):
            for pids in itertools.combinations(range(self.n), k):
                for choice in itertools.product(campaigns, repeat=k):
                    yield tuple(
                        OmissionSpec(
                            pid=pid, kind=kind, first_round=first, last_round=last
                        )
                        for pid, (kind, (first, last)) in zip(pids, choice)
                    )

    def _skew_assignments(self) -> Iterator[Tuple[Tuple[int, int], ...]]:
        yield ()
        for k in range(1, self.max_skews + 1):
            for pids in itertools.combinations(range(self.n), k):
                for values in itertools.product(self.skew_values, repeat=k):
                    yield tuple(zip(pids, values))

    def _churn_assignments(self) -> Iterator[Tuple[ChurnSpec, ...]]:
        yield ()
        for k in range(1, self.max_churn + 1):
            for pids in itertools.combinations(range(self.n), k):
                for windows in itertools.product(self.churn_windows, repeat=k):
                    yield tuple(
                        ChurnSpec(pid=pid, leave_round=leave, rejoin_round=rejoin)
                        for pid, (leave, rejoin) in zip(pids, windows)
                    )

    def enumerate_plans(self) -> Iterator[PlanSpec]:
        """Every spec in the space, in a fixed deterministic order."""
        for crashes in self._crash_assignments():
            for omissions in self._omission_assignments():
                if len({p for p, _ in crashes} | {o.pid for o in omissions}) >= self.n:
                    continue  # would leave no correct process
                for skews in self._skew_assignments():
                    for churn in self._churn_assignments():
                        for corrupt in self.corruption_choices:
                            for mid in self.corruption_round_choices:
                                for gst in self.gst_choices:
                                    for seed in self.seeds:
                                        yield PlanSpec(
                                            n=self.n,
                                            rounds=self.rounds,
                                            seed=seed,
                                            crashes=crashes,
                                            omissions=omissions,
                                            clock_skews=skews,
                                            random_corruption=corrupt,
                                            corruption_rounds=mid,
                                            gst=gst,
                                            churn=churn,
                                        )

    # -- serialization -------------------------------------------------------

    def to_jsonable(self) -> Dict[str, object]:
        """A JSON-able description of the space's atoms and bounds.

        Proof certificates (:mod:`repro.verify.certificates`) embed this
        so a "no violation exists" claim names the exact space it
        quantified over; :meth:`from_jsonable` round-trips it.
        """
        return {
            "n": self.n,
            "rounds": self.rounds,
            "crash_rounds": list(self.crash_rounds),
            "max_crashes": self.max_crashes,
            "omission_windows": [list(w) for w in self.omission_windows],
            "omission_kinds": list(self.omission_kinds),
            "max_omissions": self.max_omissions,
            "skew_values": list(self.skew_values),
            "max_skews": self.max_skews,
            "corruption_choices": list(self.corruption_choices),
            "corruption_round_choices": [
                list(c) for c in self.corruption_round_choices
            ],
            "gst_choices": list(self.gst_choices),
            "seeds": list(self.seeds),
            "churn_windows": [list(w) for w in self.churn_windows],
            "max_churn": self.max_churn,
        }

    @staticmethod
    def from_jsonable(data: Dict[str, object]) -> "PlanSpace":
        return PlanSpace(
            n=int(data["n"]),
            rounds=int(data["rounds"]),
            crash_rounds=tuple(int(r) for r in data.get("crash_rounds", ())),
            max_crashes=int(data.get("max_crashes", 0)),
            omission_windows=tuple(
                (int(a), int(b)) for a, b in data.get("omission_windows", ())
            ),
            omission_kinds=tuple(
                str(k) for k in data.get("omission_kinds", ("general",))
            ),
            max_omissions=int(data.get("max_omissions", 0)),
            skew_values=tuple(int(v) for v in data.get("skew_values", ())),
            max_skews=int(data.get("max_skews", 0)),
            corruption_choices=tuple(
                bool(c) for c in data.get("corruption_choices", (False,))
            ),
            corruption_round_choices=tuple(
                tuple(int(r) for r in choice)
                for choice in data.get("corruption_round_choices", ((),))
            ),
            gst_choices=tuple(int(g) for g in data.get("gst_choices", (0,))),
            seeds=tuple(int(s) for s in data.get("seeds", (0,))),
            churn_windows=tuple(
                (int(leave), None if rejoin is None else int(rejoin))
                for leave, rejoin in data.get("churn_windows", ())
            ),
            max_churn=int(data.get("max_churn", 0)),
        )

    # -- seeded random walk --------------------------------------------------

    def sample_plans(self, seed: int, count: int) -> Iterator[PlanSpec]:
        """``count`` random specs; draw ``i`` depends only on ``(seed, i)``.

        Per-index seeding means the stream neither shifts when the count
        changes nor depends on consumption order — the fuzzing
        counterpart of :func:`repro.util.rng.sweep_seed`.
        """
        for index in range(count):
            rng = make_rng(seed, f"explore:plan:{index}")
            pids = list(range(self.n))
            crash_pool: List[int] = []
            if self.max_crashes and self.crash_rounds:
                crash_pool = rng.sample(pids, rng.randint(0, self.max_crashes))
            crashes = tuple(
                sorted((pid, rng.choice(self.crash_rounds)) for pid in crash_pool)
            )
            omissions: Tuple[OmissionSpec, ...] = ()
            if self.max_omissions and self.omission_windows:
                remaining = [p for p in pids if p not in crash_pool]
                budget = min(self.max_omissions, max(len(remaining) - 1, 0))
                chosen = rng.sample(remaining, rng.randint(0, budget)) if budget else []
                omissions = tuple(
                    sorted(
                        (
                            OmissionSpec(
                                pid=pid,
                                kind=rng.choice(self.omission_kinds),
                                first_round=window[0],
                                last_round=window[1],
                            )
                            for pid, window in (
                                (p, rng.choice(self.omission_windows)) for p in chosen
                            )
                        ),
                        key=lambda o: o.pid,
                    )
                )
            skews: Tuple[Tuple[int, int], ...] = ()
            if self.max_skews and self.skew_values:
                chosen = rng.sample(pids, rng.randint(0, self.max_skews))
                skews = tuple(
                    sorted((pid, rng.choice(self.skew_values)) for pid in chosen)
                )
            churn: Tuple[ChurnSpec, ...] = ()
            if self.max_churn and self.churn_windows:
                chosen = rng.sample(pids, rng.randint(0, self.max_churn))
                churn = tuple(
                    sorted(
                        (
                            ChurnSpec(pid=pid, leave_round=leave, rejoin_round=rejoin)
                            for pid, (leave, rejoin) in (
                                (p, rng.choice(self.churn_windows)) for p in chosen
                            )
                        ),
                        key=lambda c: c.pid,
                    )
                )
            yield PlanSpec(
                n=self.n,
                rounds=self.rounds,
                seed=derive_seed(seed, f"explore:spec:{index}"),
                crashes=crashes,
                omissions=omissions,
                clock_skews=skews,
                random_corruption=rng.choice(self.corruption_choices),
                corruption_rounds=rng.choice(self.corruption_round_choices),
                gst=rng.choice(self.gst_choices),
                churn=churn,
            )
