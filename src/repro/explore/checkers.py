"""Streaming spec checkers for the exploration engine.

The engine evaluates thousands of fault plans, so the per-run fast path
must not materialize an :class:`~repro.histories.history.ExecutionHistory`
(O(rounds × n) records).  Each checker here is a kernel
:class:`~repro.kernel.events.Observer` that retains only small
summaries — per-round clock digests of the current stable-coterie
window, decision-journal deltas, detector samples, fault times — and
renders a :class:`SpecVerdict` after the run.

Division of labor with :mod:`repro.core.solvability`: the streaming
checkers are a *filter*.  Every violation they flag is re-confirmed by
the definition-grade predicates (:func:`repro.core.solvability
.check_definition` on a recorded history) before it is reported,
shrunk, or written to an artifact; a disagreement between the two paths
is itself surfaced as a finding (see
:class:`repro.explore.engine.ExplorationResult.mismatches`).

The clock-window machinery is inherited from
:class:`repro.analysis.stabilization.StreamingClockStabilization`,
whose grace measurements are property-tested against the
binary-search-over-recorded-history evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.stabilization import StreamingClockStabilization
from repro.histories.causality import CausalityTracker
from repro.histories.history import CLOCK_KEY
from repro.kernel.events import FaultKind, Observer

__all__ = [
    "SpecVerdict",
    "StreamingFtssClock",
    "StreamingTentativeClock",
    "StreamingCompilerCheck",
    "StreamingDetectorCheck",
]


@dataclass(frozen=True)
class SpecVerdict:
    """One checker's judgment of one fault plan.

    ``violations`` are rendered strings (deterministic, picklable,
    JSON-able — the currency of replay artifacts); ``details`` is a
    sorted tuple of key/value pairs with checker-specific measurements.
    """

    checker: str
    holds: bool
    violations: Tuple[str, ...] = ()
    details: Tuple[Tuple[str, Any], ...] = ()

    def __bool__(self) -> bool:
        return self.holds


class StreamingFtssClock(StreamingClockStabilization):
    """Streaming ftss@r check for the clock-agreement Σ (Theorem 3).

    Inherits the stable-coterie window tracking and per-window grace
    scoring; the verdict is Definition 2.4 instantiated with the
    candidate stabilization time: every window longer than ``r`` must
    reach agreement+rate within ``r`` rounds of opening.

    Mid-run corruption is the paper's "final systemic failure" framing
    (cf. ``test_mid_run_corruption_restarts_convergence``): a systemic
    failure during the run restarts the Def 2.4 obligations, so the
    checker resets its stream at each corruption round and judges the
    maximal corruption-free suffix — exactly what the confirm path
    evaluates with ``history.suffix(last corruption round)``.  Initial
    corruption (before round 1) is ordinary window grace and does not
    reset.
    """

    def __init__(self, stabilization_time: int):
        super().__init__(min_window_length=stabilization_time + 1)
        self.stabilization_time = stabilization_time
        self._first_round = 1
        self._corruption_pending = False

    def on_run_start(self, n, protocol, first_round=1):
        super().on_run_start(n, protocol, first_round)
        self._first_round = first_round

    def on_fault(self, fault):
        super().on_fault(fault)
        # The engine stamps initial corruption at first_round - 1 and
        # mid-run corruption at the round it lands in; only the latter
        # restarts the obligation stream.
        if fault.kind == FaultKind.CORRUPTION and fault.time >= self._first_round:
            self._corruption_pending = True

    def on_round_end(self, round_no):
        if not self._corruption_pending:
            super().on_round_end(round_no)
            return
        self._corruption_pending = False
        self._finish_round(round_no)  # flush and discard the fault round
        self._reset_stream()

    def _reset_stream(self) -> None:
        """Restart the obligation stream after a mid-run systemic failure."""
        self._tracker = CausalityTracker(self._n or 0)
        self._faulty = set()
        self._window_start = None
        self._window_members = None
        self._window_rows = []
        self.window_measures = []
        self._worst = 0
        self._refuted = False

    def verdict(self) -> SpecVerdict:
        r = self.stabilization_time
        violations = tuple(
            f"window [{m.first_round}, {m.last_round}] "
            f"(grace {'∞' if m.grace is None else m.grace}) "
            f"missed the ftss obligation at stabilization time {r}"
            for m in self.window_measures
            if not m.holds_at(r)
        )
        return SpecVerdict(
            checker=f"streaming-ftss-clock@{r}",
            holds=not violations,
            violations=violations,
            details=(
                ("empirical_stabilization", self.result()),
                ("windows", len(self.window_measures)),
            ),
        )


class StreamingTentativeClock(Observer):
    """Streaming Tentative-Definition-1 check (the Theorem 1 foil).

    Tentative Definition 1 evaluates Σ on the r-suffix with the faulty
    set of the *whole* history.  Streamed: keep the per-round live
    clock vectors only for rounds past the grace prefix (O(suffix), not
    O(history) — and the engine's thm1 horizons keep the suffix tiny),
    accumulate the deviator set from fault events, and scan the suffix
    at verdict time.
    """

    def __init__(self, stabilization_time: int):
        self.stabilization_time = stabilization_time
        self._first_round = 1
        self._rows: List[Tuple[int, Dict[int, Optional[int]]]] = []
        self._faulty: set = set()

    def on_run_start(self, n, protocol, first_round=1):
        self._first_round = first_round

    def on_round_start(self, round_no, snapshots):
        if round_no - self._first_round < self.stabilization_time:
            return  # inside the grace prefix: the suffix never sees it
        self._rows.append(
            (
                round_no,
                {
                    pid: None if state is None else state.get(CLOCK_KEY)
                    for pid, state in snapshots.items()
                },
            )
        )

    def on_fault(self, fault):
        if fault.kind != FaultKind.CORRUPTION:
            self._faulty.add(fault.pid)  # corruption is systemic, not a process fault

    def verdict(self) -> SpecVerdict:
        violations: List[str] = []
        live = [
            (
                round_no,
                {
                    pid: clock
                    for pid, clock in clocks.items()
                    if pid not in self._faulty and clock is not None
                },
            )
            for round_no, clocks in self._rows
        ]
        for index, (round_no, clocks) in enumerate(live):
            if len(set(clocks.values())) > 1:
                violations.append(
                    f"[round {round_no}] agreement: non-faulty clocks differ: "
                    f"{dict(sorted(clocks.items()))}"
                )
            if index + 1 < len(live):
                nxt = live[index + 1][1]
                for pid in sorted(clocks):
                    if pid in nxt and nxt[pid] != clocks[pid] + 1:
                        violations.append(
                            f"[round {round_no}] rate: process {pid} went "
                            f"{clocks[pid]} -> {nxt[pid]}"
                        )
        return SpecVerdict(
            checker=f"streaming-tentative-clock@{self.stabilization_time}",
            holds=not violations,
            violations=tuple(violations),
            details=(
                ("faulty", tuple(sorted(self._faulty))),
                ("suffix_rounds", len(self._rows)),
            ),
        )


class StreamingCompilerCheck(StreamingFtssClock):
    """Streaming ftss@final_round check of Σ⁺ for a compiled Π⁺ (Theorem 4).

    On top of the clock windows, buffers the journal pairs
    ``(decided_at_clock, last_decision)`` of the current window's rounds
    and, when the window closes, mirrors
    :class:`~repro.core.problems.RepeatedConsensusProblem`: every
    iteration whose journal entry is *freshly written* inside the
    window's obligation span must have agreeing, valid decisions among
    non-faulty processes.
    """

    def __init__(self, final_round: int, valid_proposals: Optional[frozenset] = None):
        super().__init__(stabilization_time=final_round)
        self.final_round = final_round
        self._valid_proposals = valid_proposals
        self._journal: Dict[int, Dict[int, Optional[Tuple[Any, Any]]]] = {}
        self._journal_violations: List[str] = []

    def _reset_stream(self) -> None:
        super()._reset_stream()
        self._journal = {}
        self._journal_violations = []

    def on_round_start(self, round_no, snapshots):
        super().on_round_start(round_no, snapshots)
        self._journal[round_no] = {
            pid: None
            if state is None
            else (state.get("decided_at_clock"), state.get("last_decision"))
            for pid, state in snapshots.items()
        }

    def _close_window(self, faulty: frozenset) -> None:
        first = self._window_start
        length = len(self._window_rows)
        if first is not None and length:
            last = first + length - 1
            span_first = first + self.final_round
            if span_first <= last:
                self._score_journal(span_first, last, faulty)
            for round_no in range(first, last + 1):
                self._journal.pop(round_no, None)
        super()._close_window(faulty)

    def _score_journal(self, first: int, last: int, faulty: frozenset) -> None:
        """Iteration agreement/validity over fresh writes in [first, last]."""
        groups: Dict[Any, Dict[int, Any]] = {}
        group_rounds: Dict[Any, int] = {}
        for round_no in range(first, last):
            before = self._journal.get(round_no, {})
            after = self._journal.get(round_no + 1, {})
            for pid, pair in after.items():
                if pid in faulty or pair is None:
                    continue
                decided_at, decision = pair
                if decided_at is None or decision is None:
                    continue
                if before.get(pid) == pair:
                    continue  # not a fresh write
                groups.setdefault(decided_at, {})[pid] = decision
                group_rounds.setdefault(decided_at, round_no)
        for decided_at in sorted(groups):
            decisions = groups[decided_at]
            where = group_rounds[decided_at]
            if len(set(decisions.values())) > 1:
                self._journal_violations.append(
                    f"[round {where}] iteration-agreement: iteration at clock "
                    f"{decided_at}: decisions differ: {dict(sorted(decisions.items()))}"
                )
            if self._valid_proposals is not None:
                for pid in sorted(decisions):
                    if decisions[pid] not in self._valid_proposals:
                        self._journal_violations.append(
                            f"[round {where}] iteration-validity: process {pid} "
                            f"decided {decisions[pid]!r}, not a proposal"
                        )

    def verdict(self) -> SpecVerdict:
        clock = super().verdict()
        violations = clock.violations + tuple(self._journal_violations)
        return SpecVerdict(
            checker=f"streaming-compiler@{self.final_round}",
            holds=not violations,
            violations=violations,
            details=clock.details,
        )


class StreamingDetectorCheck(Observer):
    """Streaming ◇S property check for the asynchronous target (Theorem 5).

    Retains the sampled suspect sets and the crash schedule — O(samples),
    with no message or state trace — and evaluates strong completeness
    and eventual weak accuracy at verdict time by handing a minimal
    sample-only trace to the canonical evaluators in
    :mod:`repro.detectors.properties` (zero checker drift).
    """

    def __init__(self):
        self._n = 0
        self._duration = 0.0
        self._samples: List[Tuple[float, Dict[int, Any]]] = []
        self._crashed: set = set()

    def on_run_start(self, n, protocol, first_round=1):
        self._n = n

    def on_sample(self, time, outputs):
        self._samples.append((time, dict(outputs)))

    def on_fault(self, fault):
        if fault.kind == FaultKind.CRASH:
            self._crashed.add(fault.pid)

    def on_run_end(self, time, final_states):
        self._duration = time

    def verdict(self) -> SpecVerdict:
        # Imported here: repro.detectors.properties imports the async
        # scheduler, which this module must not load for sync targets.
        from repro.asyncnet.scheduler import AsyncTrace
        from repro.detectors.properties import (
            eventual_weak_accuracy,
            strong_completeness,
        )

        trace = AsyncTrace(
            n=self._n,
            duration=self._duration,
            samples=self._samples,
            crashed=frozenset(self._crashed),
        )
        completeness = strong_completeness(trace)
        accuracy = eventual_weak_accuracy(trace)
        violations: List[str] = []
        if not completeness.holds:
            violations.append(
                "strong-completeness never converged within the run"
            )
        if not accuracy.holds:
            violations.append(
                "eventual-weak-accuracy never converged within the run"
            )
        return SpecVerdict(
            checker="streaming-detector",
            holds=not violations,
            violations=tuple(violations),
            details=(
                ("completeness_converged_at", completeness.converged_at),
                ("accuracy_converged_at", accuracy.converged_at),
                ("crashed", tuple(sorted(self._crashed))),
                ("samples", len(self._samples)),
            ),
        )
