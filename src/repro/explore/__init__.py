"""Adversarial exploration engine: search the fault-plan space.

The paper's claims are universally quantified over adversaries:
Theorems 1 and 2 assert that *no* protocol survives certain
fault/corruption patterns, while Theorems 3-5 assert the protocols of
Figures 1-4 stabilize under *every* admissible fault plan.  The
experiment sweeps (:mod:`repro.experiments`) exercise hand-written
scenarios; this package turns those spot checks into systematic
evidence by driving both engines through the kernel's
:class:`~repro.kernel.faults.FaultPlan` across whole *spaces* of fault
plans:

- :mod:`repro.explore.space` — the declarative, JSON-able fault-plan
  vocabulary (:class:`PlanSpec`) and space description
  (:class:`PlanSpace`) with exhaustive bounded enumeration, seeded
  random-walk fuzzing, and canonical-form deduplication (symmetry over
  process ids);
- :mod:`repro.explore.checkers` — streaming spec checkers (kernel
  observers retaining clock digests and decision journals, never a
  materialized :class:`~repro.histories.history.ExecutionHistory`);
- :mod:`repro.explore.targets` — the wiring of protocols to specs:
  fig1/fig3/fig4 (violations unexpected — Theorems 3-5) and thm1/thm2
  (violations *sought* — the impossibility theorems, confirmed by
  finding and shrinking a counterexample);
- :mod:`repro.explore.shrink` — the delta-debugging shrinker that
  reduces a violating plan to a locally-minimal counterexample;
- :mod:`repro.explore.artifacts` — replayable JSON artifacts
  (``python -m repro.explore replay <artifact>``);
- :mod:`repro.explore.engine` — the exploration driver
  (dedup → streaming sweep → definition-grade confirm → shrink),
  parallel via :func:`repro.experiments.base.run_sweep`;
- ``python -m repro.explore`` — the CLI, including the CI-budgeted
  ``--smoke`` mode.

See ``docs/explore.md`` for the space/checker/shrinker/replay contract.
"""

from repro.explore.artifacts import Artifact, load_artifact, replay, save_artifact
from repro.explore.engine import ExplorationResult, Finding, explore
from repro.explore.shrink import shrink
from repro.explore.space import OmissionSpec, PlanSpace, PlanSpec, dedupe
from repro.explore.targets import TARGETS, ExplorationTarget, get_target

__all__ = [
    "Artifact",
    "ExplorationResult",
    "ExplorationTarget",
    "Finding",
    "OmissionSpec",
    "PlanSpace",
    "PlanSpec",
    "TARGETS",
    "dedupe",
    "explore",
    "get_target",
    "load_artifact",
    "replay",
    "save_artifact",
    "shrink",
]
