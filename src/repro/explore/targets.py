"""Exploration targets: protocol + predicate + fault-plan space.

A target bundles everything the engine needs to judge one fault plan:

- a ``streaming`` path — run the plan with streaming observers only
  (``record_history=False`` on the synchronous substrate) and return a
  fast :class:`~repro.explore.checkers.SpecVerdict`;
- a ``confirm`` path — re-run the plan recording the history and
  evaluate the definition-grade predicates from
  :mod:`repro.core.solvability` (or, for the asynchronous target, the
  canonical detector-property evaluators).  This is the oracle the
  shrinker uses and the verdict artifacts carry.

Both paths derive every random stream from the spec's seed, so a spec
fully determines its run and artifacts replay byte-identically.

Six targets ship: ``fig1``/``fig3``/``fig4`` (Theorems 3-5 — every
plan must hold; a confirmed violation is a reproduction bug),
``thm1``/``thm2`` (Theorems 1-2 — the engine must *find* violations
and shrink them to the paper's minimal adversary shapes), and
``unison`` (the topology layer's min-rule unison on a churning ring —
every churn schedule must re-stabilize within a diameter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.compiler import compile_protocol
from repro.core.impossibility import UniformRoundAgreement
from repro.core.problems import (
    ClockAgreementProblem,
    ConjunctionProblem,
    Problem,
    RepeatedConsensusProblem,
    UniformityCondition,
)
from repro.core.rounds import RoundAgreementProtocol
from repro.core.solvability import check_definition
from repro.explore.checkers import (
    SpecVerdict,
    StreamingCompilerCheck,
    StreamingDetectorCheck,
    StreamingFtssClock,
    StreamingTentativeClock,
)
from repro.explore.space import PlanSpace, PlanSpec
from repro.protocols.floodmin import FloodMinConsensus
from repro.sync.engine import run_sync
from repro.util.rng import derive_seed
from repro.workloads.spaces import (
    FIG1_SPACE,
    FIG3_SMOKE_SPACE,
    FIG3_SPACE,
    FIG4_SPACE,
    THM1_SPACE,
    THM2_SPACE,
    UNISON_SPACE,
)

__all__ = ["ExplorationTarget", "TARGETS", "get_target"]

#: Violations carried per verdict (artifacts stay small; determinism is
#: unaffected because violation lists are generated in round order).
MAX_VIOLATIONS = 12

#: Candidate stabilization time the thm1 target refutes (any finite
#: value works; 3 keeps the exhaustive space small).
THM1_CANDIDATE = 3

#: Halting patience of the thm2 uniform protocol; its obligation is
#: checked at stabilization time patience + 1.
THM2_PATIENCE = 3


@dataclass(frozen=True)
class ExplorationTarget:
    """One explorable claim: protocol, predicate, space, expectations."""

    name: str
    title: str
    #: True for the impossibility theorems: violations are the sought
    #: outcome, and their *absence* is the alarming one.
    expect_violation: bool
    #: Whether pid relabeling preserves run semantics (sound symmetry
    #: dedup); False for per-pid-asymmetric protocols or oracles.
    symmetric: bool
    default_space: PlanSpace
    streaming: Callable[[PlanSpec], SpecVerdict]
    confirm: Callable[[PlanSpec], SpecVerdict]
    smoke_space: Optional[PlanSpace] = None


def _cap(violations) -> Tuple[str, ...]:
    return tuple(violations[:MAX_VIOLATIONS])


def _post_corruption_suffix(history, spec: PlanSpec):
    """The maximal corruption-free suffix — what Def 2.4 obliges.

    Mid-run corruption restarts the stabilization obligations (the
    repo's "final systemic failure" contract); returns ``None`` when
    nothing remains to check.
    """
    if not spec.corruption_rounds:
        return history
    cut = max(spec.corruption_rounds)  # round numbers start at 1
    if cut >= len(history):
        return None
    return history.suffix(cut)


# ---------------------------------------------------------------------------
# fig1 — round agreement (Figure 1), ftss@1 (Theorem 3)
# ---------------------------------------------------------------------------


def _fig1_streaming(spec: PlanSpec) -> SpecVerdict:
    checker = StreamingFtssClock(stabilization_time=1)
    run_sync(
        RoundAgreementProtocol(),
        n=spec.n,
        rounds=spec.rounds,
        fault_plan=spec.fault_plan(),
        observers=(checker,),
        record_history=False,
    )
    return checker.verdict()


def _fig1_confirm(spec: PlanSpec) -> SpecVerdict:
    result = run_sync(
        RoundAgreementProtocol(),
        n=spec.n,
        rounds=spec.rounds,
        fault_plan=spec.fault_plan(),
    )
    history = _post_corruption_suffix(result.history, spec)
    if history is None:
        return SpecVerdict(checker="confirm-ftss-clock@1", holds=True)
    verdict = check_definition("ftss", history, ClockAgreementProblem(), 1)
    return SpecVerdict(
        checker="confirm-ftss-clock@1",
        holds=verdict.holds,
        violations=_cap(verdict.violations),
    )


# ---------------------------------------------------------------------------
# fig3 — compiled FloodMin (Figure 3), ftss@final_round (Theorem 4)
# ---------------------------------------------------------------------------

#: Fixed per-pid proposals for the n=4 compiled-consensus target.
FIG3_PROPOSALS = (3, 1, 4, 1)


def _fig3_instance():
    pi = FloodMinConsensus(f=1, proposals=FIG3_PROPOSALS)
    plus = compile_protocol(pi)
    valid = frozenset(FIG3_PROPOSALS)
    return pi, plus, valid


def _fig3_sigma() -> Problem:
    pi, _plus, valid = _fig3_instance()
    return RepeatedConsensusProblem(pi.final_round, valid_proposals=valid)


def _fig3_streaming(spec: PlanSpec) -> SpecVerdict:
    pi, plus, valid = _fig3_instance()
    checker = StreamingCompilerCheck(
        final_round=pi.final_round, valid_proposals=valid
    )
    run_sync(
        plus,
        n=spec.n,
        rounds=spec.rounds,
        fault_plan=spec.fault_plan(),
        observers=(checker,),
        record_history=False,
    )
    return checker.verdict()


def _fig3_confirm(spec: PlanSpec) -> SpecVerdict:
    pi, plus, _valid = _fig3_instance()
    result = run_sync(
        plus, n=spec.n, rounds=spec.rounds, fault_plan=spec.fault_plan()
    )
    history = _post_corruption_suffix(result.history, spec)
    checker = f"confirm-ftss-compiler@{pi.final_round}"
    if history is None:
        return SpecVerdict(checker=checker, holds=True)
    verdict = check_definition("ftss", history, _fig3_sigma(), pi.final_round)
    return SpecVerdict(
        checker=checker, holds=verdict.holds, violations=_cap(verdict.violations)
    )


# ---------------------------------------------------------------------------
# fig4 — ◇W→◇S transformation (Figure 4), Theorem 5
# ---------------------------------------------------------------------------


def _fig4_run(spec: PlanSpec, observers=()):
    # Imported lazily so synchronous-only explorations never load the
    # asynchronous substrate.
    from repro.asyncnet.oracle import WeakDetectorOracle
    from repro.asyncnet.scheduler import AsyncScheduler
    from repro.detectors.strong import StrongDetector

    crashes = {pid: float(time) for pid, time in spec.crashes}
    oracle = WeakDetectorOracle(
        spec.n,
        crashes,
        gst=float(spec.gst),
        seed=derive_seed(spec.seed, "explore:oracle"),
    )
    scheduler = AsyncScheduler(
        StrongDetector(),
        spec.n,
        seed=derive_seed(spec.seed, "explore:sched"),
        oracle=oracle,
        fault_plan=spec.fault_plan(),
        sample_interval=2.0,
        observers=observers,
    )
    return scheduler.run(max_time=float(spec.rounds))


def _fig4_streaming(spec: PlanSpec) -> SpecVerdict:
    checker = StreamingDetectorCheck()
    _fig4_run(spec, observers=(checker,))
    return checker.verdict()


def _fig4_confirm(spec: PlanSpec) -> SpecVerdict:
    from repro.detectors.properties import (
        eventual_weak_accuracy,
        strong_completeness,
    )

    trace = _fig4_run(spec)
    completeness = strong_completeness(trace)
    accuracy = eventual_weak_accuracy(trace)
    violations = []
    if not completeness.holds:
        violations.append("strong-completeness never converged within the run")
    if not accuracy.holds:
        violations.append("eventual-weak-accuracy never converged within the run")
    return SpecVerdict(
        checker="confirm-detector",
        holds=not violations,
        violations=tuple(violations),
        details=(
            ("completeness_converged_at", completeness.converged_at),
            ("accuracy_converged_at", accuracy.converged_at),
        ),
    )


# ---------------------------------------------------------------------------
# unison — min-rule unison on a churning ring re-stabilizes (topology layer)
# ---------------------------------------------------------------------------


def _unison_confirm(spec: PlanSpec) -> SpecVerdict:
    """Unison re-agreement after quiescence, on the recorded history.

    The obligation: let *quiet* be the last churn or mid-run corruption
    round; the processes still attached must agree (and tick +1) from
    round ``quiet + diameter + 1`` to the horizon.  A process whose
    churn window never rejoins free-runs detached and is exempt.
    """
    # Imported lazily: only this target pulls in the topology layer.
    from repro.kernel.topology import RingTopology
    from repro.protocols.unison import MinUnison

    topology = RingTopology(spec.n)
    result = run_sync(
        MinUnison(),
        n=spec.n,
        rounds=spec.rounds,
        fault_plan=spec.fault_plan(),
        topology=topology,
    )
    quiet = max(spec.corruption_rounds, default=0)
    for ch in spec.churn:
        quiet = max(quiet, ch.leave_round, ch.rejoin_round or 0)
    deadline = quiet + topology.diameter()
    exempt = {ch.pid for ch in spec.churn if ch.rejoin_round is None}
    violations: list = []
    previous: Optional[Dict[int, int]] = None
    for round_no in range(deadline + 1, spec.rounds + 1):
        clocks = {
            pid: clock
            for pid, clock in result.history.clocks(round_no).items()
            if pid not in exempt and clock is not None
        }
        if len(set(clocks.values())) > 1:
            violations.append(
                f"[round {round_no}] agreement: attached clocks differ "
                f"{deadline - quiet} rounds after quiescence: "
                f"{dict(sorted(clocks.items()))}"
            )
        if previous is not None:
            for pid in sorted(clocks):
                if pid in previous and clocks[pid] != previous[pid] + 1:
                    violations.append(
                        f"[round {round_no}] rate: process {pid} went "
                        f"{previous[pid]} -> {clocks[pid]}"
                    )
        previous = clocks
    return SpecVerdict(
        checker=f"confirm-unison-ring@diameter={topology.diameter()}",
        holds=not violations,
        violations=_cap(violations),
        details=(("quiet_round", quiet), ("deadline", deadline)),
    )


#: Unison's obligation starts at a spec-dependent round (the churn
#: schedule's quiescence point), which the generic streaming clock
#: checkers cannot express.  The runs are n=6 and 16 rounds, so the
#: definition-grade path doubles as the fast path (same documented
#: exception as thm2).
_unison_streaming = _unison_confirm


# ---------------------------------------------------------------------------
# thm1 — the tentative definition is refutable (Theorem 1)
# ---------------------------------------------------------------------------


def _thm1_streaming(spec: PlanSpec) -> SpecVerdict:
    checker = StreamingTentativeClock(THM1_CANDIDATE)
    run_sync(
        RoundAgreementProtocol(),
        n=spec.n,
        rounds=spec.rounds,
        fault_plan=spec.fault_plan(),
        observers=(checker,),
        record_history=False,
    )
    return checker.verdict()


def _thm1_confirm(spec: PlanSpec) -> SpecVerdict:
    result = run_sync(
        RoundAgreementProtocol(),
        n=spec.n,
        rounds=spec.rounds,
        fault_plan=spec.fault_plan(),
    )
    sigma = ClockAgreementProblem()
    tentative = check_definition(
        "tentative", result.history, sigma, THM1_CANDIDATE
    )
    # The dichotomy that motivates Definition 2.4: the very runs that
    # refute the tentative definition still ftss-solve Σ at time 1.
    ftss = check_definition("ftss", result.history, sigma, 1)
    return SpecVerdict(
        checker=f"confirm-tentative@{THM1_CANDIDATE}",
        holds=tentative.holds,
        violations=_cap(tentative.violations),
        details=(("ftss_at_1_holds", ftss.holds),),
    )


# ---------------------------------------------------------------------------
# thm2 — uniformity is impossible with process failures (Theorem 2)
# ---------------------------------------------------------------------------


def _thm2_sigma() -> Problem:
    return ConjunctionProblem(ClockAgreementProblem(), UniformityCondition())


def _thm2_run(spec: PlanSpec):
    return run_sync(
        UniformRoundAgreement(patience=THM2_PATIENCE),
        n=spec.n,
        rounds=spec.rounds,
        fault_plan=spec.fault_plan(),
    )


def _thm2_confirm(spec: PlanSpec) -> SpecVerdict:
    result = _thm2_run(spec)
    verdict = check_definition(
        "ftss", result.history, _thm2_sigma(), THM2_PATIENCE + 1
    )
    return SpecVerdict(
        checker=f"confirm-ftss-uniform@{THM2_PATIENCE + 1}",
        holds=verdict.holds,
        violations=_cap(verdict.violations),
    )


#: thm2's Σ mixes clock agreement with the uniformity condition on
#: *faulty* processes — a predicate the streaming clock checkers do not
#: model.  The runs are 2-process and 12 rounds, so the definition-grade
#: path doubles as the fast path (documented search-target exception).
_thm2_streaming = _thm2_confirm


TARGETS: Dict[str, ExplorationTarget] = {
    "fig1": ExplorationTarget(
        name="fig1",
        title="round agreement (Figure 1) ftss-solves clock agreement at time 1",
        expect_violation=False,
        symmetric=True,
        default_space=FIG1_SPACE,
        streaming=_fig1_streaming,
        confirm=_fig1_confirm,
    ),
    "fig3": ExplorationTarget(
        name="fig3",
        title="compiled FloodMin (Figure 3) ftss-solves Σ⁺ at final_round",
        expect_violation=False,
        symmetric=False,  # per-pid proposals
        default_space=FIG3_SPACE,
        streaming=_fig3_streaming,
        confirm=_fig3_confirm,
        smoke_space=FIG3_SMOKE_SPACE,
    ),
    "fig4": ExplorationTarget(
        name="fig4",
        title="◇W→◇S transformation (Figure 4) yields completeness + accuracy",
        expect_violation=False,
        symmetric=False,  # the oracle's watcher assignment is pid-ordered
        default_space=FIG4_SPACE,
        streaming=_fig4_streaming,
        confirm=_fig4_confirm,
    ),
    "unison": ExplorationTarget(
        name="unison",
        title="min-rule unison on a churning ring re-agrees within a diameter",
        expect_violation=False,
        symmetric=False,  # ring adjacency is pid-dependent
        default_space=UNISON_SPACE,
        streaming=_unison_streaming,
        confirm=_unison_confirm,
    ),
    "thm1": ExplorationTarget(
        name="thm1",
        title=f"Tentative Definition 1 is refutable at r={THM1_CANDIDATE} (Theorem 1)",
        expect_violation=True,
        symmetric=True,
        default_space=THM1_SPACE,
        streaming=_thm1_streaming,
        confirm=_thm1_confirm,
    ),
    "thm2": ExplorationTarget(
        name="thm2",
        title=(
            f"no patience-{THM2_PATIENCE} halting rule ftss-solves "
            "clock agreement ∧ uniformity (Theorem 2)"
        ),
        expect_violation=True,
        symmetric=True,
        default_space=THM2_SPACE,
        streaming=_thm2_streaming,
        confirm=_thm2_confirm,
    ),
}


def get_target(name: str) -> ExplorationTarget:
    try:
        return TARGETS[name]
    except KeyError:
        raise ValueError(
            f"unknown exploration target {name!r}; "
            f"available: {', '.join(sorted(TARGETS))}"
        ) from None
