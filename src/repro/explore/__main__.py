"""CLI front-end for the adversarial exploration engine.

Usage::

    python -m repro.explore --smoke [--seed S] [--jobs N] [--out DIR]
                                    [--no-cache]
    python -m repro.explore run TARGET [--budget N] [--seed S] [--jobs N]
                                       [--mode auto|enumerate|sample]
                                       [--out DIR] [--no-shrink]
                                       [--no-cache]
    python -m repro.explore replay ARTIFACT
    python -m repro.explore list

``--smoke`` is the CI budget: exhaustively explore the thm1 space,
confirm the engine finds and shrinks a Theorem 1 counterexample of the
paper's minimal shape, sweep the seeded fig3 corruption slice, and
round-trip both artifacts through ``replay`` — all deterministic, so
the artifacts are byte-identical across ``--jobs`` settings.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List, Optional

import repro.cache
from repro.explore.artifacts import (
    Artifact,
    load_artifact,
    replay,
    save_artifact,
)
from repro.explore.engine import ExplorationResult, explore
from repro.explore.targets import TARGETS, get_target

#: Smoke budgets: thm1's space has 77 raw plans, so 96 enumerates it
#: exhaustively; the fig3 corruption slice has 25.
SMOKE_THM1_BUDGET = 96
SMOKE_FIG3_BUDGET = 32


def _summarize(result: ExplorationResult) -> str:
    shape = "exhaustive" if result.exhaustive else "budgeted"
    lines = [
        f"[{result.target}] {result.mode} ({shape}): "
        f"{result.generated} generated, {result.deduped_away} deduped, "
        f"{result.examined} examined, {len(result.flagged)} flagged, "
        f"{result.violation_count} confirmed violation(s), "
        f"{len(result.mismatches)} checker mismatch(es)"
    ]
    for finding in result.findings:
        lines.append(
            f"  - minimal counterexample ({finding.shrink_oracle_calls} "
            f"oracle calls): {finding.minimal.to_jsonable()}"
        )
        for violation in finding.verdict.violations[:3]:
            lines.append(f"      {violation}")
    for spec, streaming, confirm in result.mismatches:
        lines.append(
            f"  ! streaming flagged but confirm holds: {spec.to_jsonable()} "
            f"(streaming: {streaming.violations[:2]})"
        )
    return "\n".join(lines)


def _finding_artifact(result: ExplorationResult, index: int = 0) -> Artifact:
    finding = result.findings[index]
    target = get_target(result.target)
    return Artifact(
        target=result.target,
        spec=finding.minimal,
        expect_violation=target.expect_violation,
        verdict_holds=finding.verdict.holds,
        violations=tuple(finding.verdict.violations),
        shrunk_from=finding.original,
        shrink_oracle_calls=finding.shrink_oracle_calls,
    )


def _cmd_run(args) -> int:
    result = explore(
        args.target,
        budget=args.budget,
        seed=args.seed,
        jobs=args.jobs,
        mode=args.mode,
        do_shrink=not args.no_shrink,
        verify_residual=args.verify_residual,
    )
    print(_summarize(result))
    if result.residual is not None:
        residual = result.residual
        frontier = residual.frontier
        print(
            f"  residual proof plane [{residual.target}@{residual.at}] "
            f"{residual.engine}: {residual.verdict} over {residual.examined} "
            f"plan(s) ({frontier.states_distinct} distinct states)"
            if frontier is not None
            else f"  residual proof plane: {residual.verdict}"
        )
    if args.out:
        out_dir = pathlib.Path(args.out)
        for index in range(len(result.findings)):
            path = out_dir / f"{result.target}-finding-{index}.json"
            save_artifact(path, _finding_artifact(result, index))
            print(f"  wrote {path}")
    target = get_target(args.target)
    if target.expect_violation and not result.findings:
        print(
            f"FAIL: {args.target} expects violations (impossibility theorem) "
            "but none were found",
            file=sys.stderr,
        )
        return 1
    if not target.expect_violation and result.findings:
        print(
            f"FAIL: {args.target} should hold on every plan but "
            f"{result.violation_count} confirmed violation(s) were found",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_replay(args) -> int:
    artifact = load_artifact(args.artifact)
    outcome = replay(artifact)
    status = "reproduced" if outcome.reproduced else "DID NOT REPRODUCE"
    print(
        f"[{artifact.target}] stored verdict holds={artifact.verdict_holds}; "
        f"re-run holds={outcome.verdict.holds}: {status}"
    )
    for violation in outcome.verdict.violations[:5]:
        print(f"  {violation}")
    return 0 if outcome.reproduced else 1


def _cmd_list(_args) -> int:
    for name in sorted(TARGETS):
        target = TARGETS[name]
        expectation = "find violations" if target.expect_violation else "must hold"
        print(f"{name:6s} [{expectation:15s}] {target.title}")
    return 0


def _smoke(seed: int, jobs: Optional[int], out: str) -> int:
    started = time.monotonic()
    out_dir = pathlib.Path(out)
    failures: List[str] = []

    # -- thm1: the engine must find, shrink, and replay a Theorem 1
    #    counterexample of the paper's minimal shape.
    thm1 = explore(
        "thm1", budget=SMOKE_THM1_BUDGET, seed=seed, jobs=jobs, mode="enumerate"
    )
    print(_summarize(thm1))
    if thm1.mismatches:
        failures.append("thm1: streaming/confirm checker mismatch")
    if not thm1.findings:
        failures.append("thm1: no violation found (Theorem 1 should be refutable)")
    else:
        minimal = thm1.findings[0].minimal
        shape_ok = (
            not minimal.crashes
            and len(minimal.omissions) == 1
            and len(minimal.clock_skews) == 1
            and not minimal.random_corruption
            and not minimal.corruption_rounds
        )
        if not shape_ok:
            failures.append(
                "thm1: shrunk counterexample is not the paper's minimal "
                f"shape (one hidden campaign + one skew): {minimal.to_jsonable()}"
            )
        path = save_artifact(
            out_dir / "thm1-counterexample.json", _finding_artifact(thm1)
        )
        print(f"  wrote {path}")
        if not replay(load_artifact(path)).reproduced:
            failures.append("thm1: artifact replay did not reproduce the verdict")

    # -- fig3: every seeded corruption plan must hold (Theorem 4); the
    #    first plan becomes a replayable witness artifact.
    fig3_target = get_target("fig3")
    fig3 = explore(
        "fig3",
        budget=SMOKE_FIG3_BUDGET,
        seed=seed,
        jobs=jobs,
        mode="enumerate",
        space=fig3_target.smoke_space,
    )
    print(_summarize(fig3))
    if fig3.findings:
        failures.append(
            f"fig3: {fig3.violation_count} confirmed violation(s) — "
            "Theorem 4 should hold on every corruption plan"
        )
    if fig3.mismatches:
        failures.append("fig3: streaming/confirm checker mismatch")
    if not fig3.examined_specs:
        failures.append("fig3: smoke space produced no plans")
    else:
        witness_spec = fig3.examined_specs[0]
        verdict = fig3_target.confirm(witness_spec)
        artifact = Artifact(
            target="fig3",
            spec=witness_spec,
            expect_violation=False,
            verdict_holds=verdict.holds,
            violations=tuple(verdict.violations),
        )
        path = save_artifact(out_dir / "fig3-witness.json", artifact)
        print(f"  wrote {path}")
        if not replay(load_artifact(path)).reproduced:
            failures.append("fig3: witness replay did not reproduce the verdict")

    elapsed = time.monotonic() - started
    print(f"\nsmoke: {len(failures)} failure(s) in {elapsed:.1f}s")
    for failure in failures:
        print(f"  - {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Adversarial exploration of the paper's fault-plan spaces.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI budget: thm1 counterexample + fig3 corruption witness, "
        "shrunk, written as artifacts, and replayed",
    )
    parser.add_argument("--seed", type=int, default=0, help="fuzz seed (smoke mode)")
    parser.add_argument(
        "--jobs", type=int, default=None, help="sweep worker processes (smoke mode)"
    )
    parser.add_argument(
        "--out",
        default="explore-artifacts",
        help="artifact directory (smoke mode; default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the run cache: execute every simulation",
    )
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser("run", help="explore one target's fault-plan space")
    run_p.add_argument("target", choices=sorted(TARGETS))
    run_p.add_argument("--budget", type=int, default=200)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--jobs", type=int, default=None)
    run_p.add_argument(
        "--mode", choices=("auto", "enumerate", "sample"), default="auto"
    )
    run_p.add_argument("--out", default=None, help="write finding artifacts here")
    run_p.add_argument("--no-shrink", action="store_true")
    run_p.add_argument(
        "--verify-residual",
        action="store_true",
        help="finish with a proof-plane pass: exhaust the target's curated "
        "verify space with the explicit engine (see python -m repro.verify)",
    )
    run_p.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the run cache: execute every simulation",
    )
    run_p.set_defaults(func=_cmd_run)

    replay_p = sub.add_parser("replay", help="re-execute a saved artifact")
    replay_p.add_argument("artifact")
    replay_p.set_defaults(func=_cmd_replay)

    list_p = sub.add_parser("list", help="list exploration targets")
    list_p.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    if args.no_cache:
        repro.cache.disable()
    if args.smoke:
        return _smoke(args.seed, args.jobs, args.out)
    if args.command is None:
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
