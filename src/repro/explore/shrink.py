"""Delta-debugging shrinker for violating fault plans.

Greedy descent over a deterministic candidate order: propose strictly
smaller variants of the current spec (drop an ingredient, narrow an
omission window, halve a magnitude, shorten the horizon), keep the
first variant the oracle still rejects, repeat until no candidate
works.  Every accepted candidate strictly decreases a well-founded size
measure, so the loop terminates; the result is *locally* minimal —
removing any single ingredient (or shrinking any single magnitude step)
makes the violation disappear.

The oracle is the target's definition-grade ``confirm`` path (see
:mod:`repro.explore.targets`), never the streaming filter — a shrink
step must not follow a checker artifact.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Tuple

from repro.explore.space import OmissionSpec, PlanSpec

__all__ = ["neighborhood", "shrink", "spec_size"]

#: Ceiling on oracle invocations per shrink (a safety net, not a tuning
#: knob: the greedy descent on these spaces needs far fewer).
MAX_ORACLE_CALLS = 400


def spec_size(spec: PlanSpec) -> Tuple[int, ...]:
    """The well-founded measure the shrinker descends on."""
    return (
        len(spec.crashes)
        + len(spec.omissions)
        + len(spec.clock_skews)
        + int(spec.random_corruption)
        + len(spec.corruption_rounds),
        sum(om.last_round - om.first_round + 1 for om in spec.omissions),
        sum(clock for _, clock in spec.clock_skews),
        spec.rounds,
        spec.gst,
    )


def _without(items: tuple, index: int) -> tuple:
    return items[:index] + items[index + 1 :]


def _variant(spec: PlanSpec, **changes):
    """``dataclasses.replace`` that returns None for invalid variants.

    Spec validation runs at construction; a candidate that violates an
    invariant (e.g. an orphaned constraint after a drop) is simply not
    proposed rather than aborting the candidate stream.
    """
    try:
        return replace(spec, **changes)
    except ValueError:
        return None


def _candidates(spec: PlanSpec) -> Iterator[PlanSpec]:
    """Strictly smaller variants, most aggressive first, fixed order."""
    # Drop whole ingredients.
    for i in range(len(spec.crashes)):
        yield _variant(spec, crashes=_without(spec.crashes, i))
    for i in range(len(spec.omissions)):
        yield _variant(spec, omissions=_without(spec.omissions, i))
    for i in range(len(spec.clock_skews)):
        yield _variant(spec, clock_skews=_without(spec.clock_skews, i))
    if spec.random_corruption:
        yield _variant(spec, random_corruption=False)
    for i in range(len(spec.corruption_rounds)):
        yield _variant(spec, corruption_rounds=_without(spec.corruption_rounds, i))
    # Shorten the horizon (also tightens omission windows to fit).
    for shorter in (spec.rounds // 2, spec.rounds - 1):
        if shorter >= 2 and shorter < spec.rounds:
            fitted: List[OmissionSpec] = []
            ok = True
            for om in spec.omissions:
                if om.first_round > shorter:
                    ok = False  # the campaign would vanish, changing semantics
                    break
                fitted.append(
                    replace(om, last_round=min(om.last_round, shorter))
                )
            if ok:
                yield _variant(
                    spec,
                    rounds=shorter,
                    omissions=tuple(fitted),
                    corruption_rounds=tuple(
                        r for r in spec.corruption_rounds if r <= shorter
                    ),
                )
    # Narrow omission windows one round at a time.
    for i, om in enumerate(spec.omissions):
        if om.last_round > om.first_round:
            for narrowed in (
                replace(om, last_round=om.last_round - 1),
                replace(om, first_round=om.first_round + 1),
            ):
                yield _variant(
                    spec,
                    omissions=spec.omissions[:i] + (narrowed,) + spec.omissions[i + 1 :],
                )
    # Shrink skew magnitudes toward the protocol's clean initial clock.
    for i, (pid, clock) in enumerate(spec.clock_skews):
        for smaller in (1, clock // 2, clock - 1):
            if 1 <= smaller < clock:
                yield _variant(
                    spec,
                    clock_skews=spec.clock_skews[:i]
                    + ((pid, smaller),)
                    + spec.clock_skews[i + 1 :],
                )
    # Pull GST to the start.
    if spec.gst > 0:
        yield _variant(spec, gst=0)


def neighborhood(spec: PlanSpec, limit: int = 20_000) -> List[PlanSpec]:
    """Every spec strictly smaller than ``spec`` under shrink steps.

    The transitive closure of :func:`_candidates` — exactly the space a
    greedy :func:`shrink` descent could ever visit from ``spec``.  A
    spec with **no violating member** of this set is *provably minimal*
    with respect to the shrinker's move set, a strictly stronger claim
    than the local minimality ``shrink`` guarantees (greedy descent only
    proves no *single* step preserves the violation; the closure also
    rules out multi-step descendants).  :mod:`repro.verify` exhausts it
    to certify EXPLORE counterexamples.

    Every edge strictly decreases :func:`spec_size` (a well-founded
    measure), so the closure is finite; ``limit`` guards against
    accidentally huge specs.  The result is sorted by
    :meth:`PlanSpec.sort_key` — deterministic and duplicate-free.
    """
    seen = {spec.sort_key()}
    frontier: List[PlanSpec] = [spec]
    closure: List[PlanSpec] = []
    while frontier:
        current = frontier.pop()
        for candidate in _candidates(current):
            if candidate is None:
                continue
            if spec_size(candidate) >= spec_size(current):
                continue  # defensive, mirroring shrink(): only strict steps
            key = candidate.sort_key()
            if key in seen:
                continue
            seen.add(key)
            closure.append(candidate)
            frontier.append(candidate)
            if len(closure) > limit:
                raise ValueError(
                    f"shrink neighborhood of {spec!r} exceeds {limit} specs; "
                    "pass a larger limit to enumerate it anyway"
                )
    closure.sort(key=PlanSpec.sort_key)
    return closure


def shrink(
    spec: PlanSpec,
    still_violates: Callable[[PlanSpec], bool],
    max_oracle_calls: int = MAX_ORACLE_CALLS,
) -> Tuple[PlanSpec, int]:
    """Greedily minimize ``spec`` while ``still_violates`` stays true.

    Returns ``(minimal_spec, oracle_calls)``.  ``still_violates(spec)``
    must be true on entry; candidates that fail spec validation are
    skipped (e.g. a drop that orphans a constraint).
    """
    current = spec
    calls = 0
    improved = True
    while improved and calls < max_oracle_calls:
        improved = False
        for candidate in _candidates(current):
            if candidate is None:
                continue  # invalid variant: not part of the space
            if spec_size(candidate) >= spec_size(current):
                continue  # defensive: never accept a non-decreasing step
            calls += 1
            if still_violates(candidate):
                current = candidate
                improved = True
                break
            if calls >= max_oracle_calls:
                break
    return current, calls
