"""The exploration driver: generate → dedupe → sweep → confirm → shrink.

One :func:`explore` call judges up to ``budget`` fault plans against a
target:

1. **generate** — exhaustively enumerate the space when it fits the
   budget, otherwise draw a seeded random walk (``mode="auto"``; both
   modes are forceable);
2. **dedupe** — canonical-form deduplication under process-id
   permutation (only when the target is symmetric and the spec carries
   no seeded per-pid randomness — see
   :func:`repro.explore.space.canonical_key`);
3. **sweep** — run the streaming checker over every surviving spec, in
   parallel through :func:`repro.experiments.base.run_sweep` (fork
   pool, order-preserving, so results are independent of ``--jobs``);
4. **confirm** — re-run every streaming-flagged spec through the
   target's definition-grade confirm path; only confirmed violations
   become findings, and streaming/confirm disagreements are surfaced
   as :attr:`ExplorationResult.mismatches` instead of silently trusted;
5. **shrink** — delta-debug the first few confirmed violations to
   locally-minimal counterexamples (oracle = confirm path).

Workers run the *streaming* path only; confirmation and shrinking are
sequential in the parent, which keeps the expensive fork pool on the
cheap filter and the verdicts of record on one deterministic codepath.

Both paths are memoized through the content-addressed run cache
(:mod:`repro.cache`): the streaming sweep via ``run_sweep``'s
``cache=`` namespace, the confirm oracle via :func:`_cached_confirm`.
A spec fully determines its verdict, so delta-debugging steps and
repeated sampling across *separate invocations* become lookups — the
shrinker replays near-identical sub-plans hundreds of times per
counterexample, and every one it has judged before is free.  Artifact
``replay`` deliberately bypasses the cache: it exists to re-execute.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cache import cached_call
from repro.experiments.base import run_sweep
from repro.explore.checkers import SpecVerdict
from repro.explore.shrink import shrink
from repro.explore.space import PlanSpace, PlanSpec, dedupe
from repro.explore.targets import ExplorationTarget, get_target

__all__ = ["ExplorationResult", "Finding", "explore"]

#: How many confirmed violations are shrunk per exploration.
MAX_SHRUNK_FINDINGS = 3


def _streaming_worker(task: Tuple[str, PlanSpec]) -> SpecVerdict:
    """Module-level (hence picklable) sweep worker: the fast filter."""
    target_name, spec = task
    return get_target(target_name).streaming(spec)


def _confirm_worker(task: Tuple[str, PlanSpec]) -> SpecVerdict:
    """Module-level confirm executor (re-importable for cache verify)."""
    target_name, spec = task
    return get_target(target_name).confirm(spec)


def _cached_confirm(target: ExplorationTarget, spec: PlanSpec) -> SpecVerdict:
    """The definition-grade oracle, memoized per canonical spec bytes."""
    return cached_call(
        f"explore:confirm:{target.name}", _confirm_worker, (target.name, spec)
    )


@dataclass(frozen=True)
class Finding:
    """One confirmed violation, shrunk to a locally-minimal spec."""

    original: PlanSpec
    minimal: PlanSpec
    verdict: SpecVerdict
    shrink_oracle_calls: int


@dataclass
class ExplorationResult:
    """Everything one :func:`explore` call learned."""

    target: str
    mode: str
    #: True when the space was fully enumerated within the budget.
    exhaustive: bool
    generated: int
    deduped_away: int
    examined: int
    #: The deduplicated work list, in sweep order.
    examined_specs: List[PlanSpec] = field(default_factory=list)
    #: Specs the streaming filter flagged (pre-confirmation).
    flagged: List[PlanSpec] = field(default_factory=list)
    #: Confirmed violations, shrunk (first MAX_SHRUNK_FINDINGS) or raw.
    findings: List[Finding] = field(default_factory=list)
    #: (spec, streaming verdict, confirm verdict) where the two paths
    #: disagreed — a checker bug or an unsound streaming approximation;
    #: always worth a look.
    mismatches: List[Tuple[PlanSpec, SpecVerdict, SpecVerdict]] = field(
        default_factory=list
    )
    #: The proof plane's verdict over the target's curated verify space
    #: (a :class:`repro.verify.VerifyResult`), when the exploration was
    #: asked to exhaust the residual space (``verify_residual=True`` and
    #: the target has a bounded verify model); None otherwise.
    residual: Optional[object] = None

    @property
    def violation_count(self) -> int:
        return len(self.findings)


def _generate(
    space: PlanSpace, mode: str, budget: int, seed: int, symmetric: bool
) -> Tuple[List[PlanSpec], str, bool, int, int]:
    """Produce the deduplicated work list for one exploration."""
    if mode not in ("auto", "enumerate", "sample"):
        raise ValueError(f"unknown exploration mode {mode!r}")
    if mode in ("auto", "enumerate"):
        # Peek one spec past the budget to learn whether enumeration
        # is exhaustive at this budget.
        head = list(itertools.islice(space.enumerate_plans(), budget + 1))
        exhaustive = len(head) <= budget
        if exhaustive or mode == "enumerate":
            specs, dropped = dedupe(head[:budget], symmetric=symmetric)
            return specs, "enumerate", exhaustive, len(head[:budget]), dropped
    # Large space (or forced): seeded random walk.  Oversample before
    # dedup so duplicates don't eat the budget, then cap.
    raw = list(space.sample_plans(seed, budget * 2))
    specs, dropped = dedupe(raw, symmetric=symmetric)
    overflow = len(specs) - budget
    if overflow > 0:
        specs = specs[:budget]
        dropped += overflow
    return specs, "sample", False, len(raw), dropped


def explore(
    target_name: str,
    budget: int = 200,
    seed: int = 0,
    jobs: Optional[int] = None,
    mode: str = "auto",
    space: Optional[PlanSpace] = None,
    do_shrink: bool = True,
    verify_residual: bool = False,
) -> ExplorationResult:
    """Search one target's fault-plan space for spec violations.

    Deterministic in ``(target_name, budget, seed, mode, space)``:
    ``jobs`` only changes wall-clock time, never results.

    ``verify_residual=True`` finishes with a proof-plane pass: after
    the sampled search, :func:`repro.verify.verify` exhausts the
    target's *curated verify space* with the explicit-state engine and
    the verdict lands in :attr:`ExplorationResult.residual` — turning
    this exploration's "found nothing" into "provably nothing" over
    the bounded space.  Targets without a bounded verify model (the
    asynchronous ``fig4``) leave ``residual`` as None.
    """
    target = get_target(target_name)
    space = space if space is not None else target.default_space
    specs, resolved_mode, exhaustive, generated, deduped_away = _generate(
        space, mode, budget, seed, target.symmetric
    )

    verdicts = run_sweep(
        _streaming_worker,
        [(target.name, spec) for spec in specs],
        jobs,
        cache=f"explore:streaming:{target.name}",
    )

    result = ExplorationResult(
        target=target.name,
        mode=resolved_mode,
        exhaustive=exhaustive,
        generated=generated,
        deduped_away=deduped_away,
        examined=len(specs),
        examined_specs=list(specs),
    )

    confirmed: List[Tuple[PlanSpec, SpecVerdict]] = []
    for spec, streaming in zip(specs, verdicts):
        if streaming.holds:
            continue
        result.flagged.append(spec)
        confirm = _cached_confirm(target, spec)
        if confirm.holds:
            result.mismatches.append((spec, streaming, confirm))
        else:
            confirmed.append((spec, confirm))

    def still_violates(candidate: PlanSpec) -> bool:
        return not _cached_confirm(target, candidate).holds

    for index, (spec, confirm) in enumerate(confirmed):
        if do_shrink and index < MAX_SHRUNK_FINDINGS:
            minimal, calls = shrink(spec, still_violates)
            verdict = confirm if minimal == spec else _cached_confirm(target, minimal)
            result.findings.append(
                Finding(
                    original=spec,
                    minimal=minimal,
                    verdict=verdict,
                    shrink_oracle_calls=calls,
                )
            )
        else:
            result.findings.append(
                Finding(
                    original=spec,
                    minimal=spec,
                    verdict=confirm,
                    shrink_oracle_calls=0,
                )
            )

    if verify_residual:
        # Imported lazily (and inside the flag): the verify plane
        # imports this module, and most explorations never need it.
        import repro.verify

        if target.name in repro.verify.VERIFY_TARGETS:
            result.residual = repro.verify.verify(
                target.name, jobs=jobs, engine="explicit"
            )
    return result
