"""Replayable counterexample/witness artifacts.

An :class:`Artifact` captures everything needed to re-execute one
explored fault plan deterministically: the target name, the declarative
:class:`~repro.explore.space.PlanSpec` (seed included), the verdict
that was recorded, and — for shrunk counterexamples — the original
spec the shrinker started from.

Serialization is canonical JSON (sorted keys, fixed indentation, no
timestamps, no host or parallelism information), so the same
exploration produces byte-identical artifacts regardless of
``--jobs`` — the property CI pins.

``python -m repro.explore replay <artifact>`` re-runs the spec through
the target's definition-grade confirm path and reports whether the
stored verdict reproduces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.explore.checkers import SpecVerdict
from repro.explore.space import PlanSpec

__all__ = [
    "Artifact",
    "ReplayOutcome",
    "load_artifact",
    "replay",
    "save_artifact",
]

#: Bumped on any incompatible change to the artifact layout.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Artifact:
    """One replayable exploration outcome."""

    target: str
    spec: PlanSpec
    #: What the run means: a violation artifact for the impossibility
    #: targets (or a reproduction bug), a holding witness otherwise.
    expect_violation: bool
    verdict_holds: bool
    violations: Tuple[str, ...] = ()
    #: The pre-shrink spec, when this artifact came out of the shrinker.
    shrunk_from: Optional[PlanSpec] = None
    shrink_oracle_calls: int = 0

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "target": self.target,
            "spec": self.spec.to_jsonable(),
            "expect_violation": self.expect_violation,
            "verdict_holds": self.verdict_holds,
            "violations": list(self.violations),
            "shrunk_from": None
            if self.shrunk_from is None
            else self.shrunk_from.to_jsonable(),
            "shrink_oracle_calls": self.shrink_oracle_calls,
        }

    @staticmethod
    def from_jsonable(data: Dict[str, Any]) -> "Artifact":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"artifact schema version {version!r} unsupported "
                f"(expected {SCHEMA_VERSION})"
            )
        shrunk_from = data.get("shrunk_from")
        return Artifact(
            target=str(data["target"]),
            spec=PlanSpec.from_jsonable(data["spec"]),
            expect_violation=bool(data["expect_violation"]),
            verdict_holds=bool(data["verdict_holds"]),
            violations=tuple(str(v) for v in data.get("violations", ())),
            shrunk_from=None
            if shrunk_from is None
            else PlanSpec.from_jsonable(shrunk_from),
            shrink_oracle_calls=int(data.get("shrink_oracle_calls", 0)),
        )

    def to_verify_instance(self) -> "Tuple[str, int, PlanSpec]":
        """The verify-plane instance this artifact is a run of.

        Returns ``(verify target name, stabilization time, spec)`` —
        the stable bridge :func:`repro.verify.cross_check` and the
        minimality certifier consume.  Exploration targets and verify
        targets share names and canonical obligation times, so the
        round-trip is the identity on the covered targets; the
        asynchronous ``fig4`` has no bounded verify model and raises.
        """
        # Imported here: artifacts must not pull the verify plane (and
        # its protocol imports) into every explore invocation.
        from repro.verify.targets import VERIFY_TARGETS

        if self.target not in VERIFY_TARGETS:
            raise ValueError(
                f"exploration target {self.target!r} has no verify-plane "
                f"model; covered: {', '.join(sorted(VERIFY_TARGETS))}"
            )
        return (self.target, VERIFY_TARGETS[self.target].default_at, self.spec)


def render_artifact(artifact: Artifact) -> str:
    """The canonical byte representation (what :func:`save_artifact` writes)."""
    return json.dumps(artifact.to_jsonable(), sort_keys=True, indent=2) + "\n"


def save_artifact(path: Union[str, Path], artifact: Artifact) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_artifact(artifact), encoding="utf-8")
    return path


def load_artifact(path: Union[str, Path]) -> Artifact:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return Artifact.from_jsonable(data)


@dataclass(frozen=True)
class ReplayOutcome:
    """The result of deterministically re-executing an artifact."""

    artifact: Artifact
    verdict: SpecVerdict
    #: Whether the re-run reproduced the stored verdict exactly
    #: (holds flag and violation strings).
    reproduced: bool


def replay(artifact: Artifact) -> ReplayOutcome:
    """Re-run the artifact's spec through its target's confirm path."""
    from repro.explore.targets import get_target

    target = get_target(artifact.target)
    verdict = target.confirm(artifact.spec)
    reproduced = (
        verdict.holds == artifact.verdict_holds
        and tuple(verdict.violations) == artifact.violations
    )
    return ReplayOutcome(artifact=artifact, verdict=verdict, reproduced=reproduced)
