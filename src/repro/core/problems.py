"""Problems as predicates on (history, faulty set).

The paper defines a *problem* Σ as a predicate on a history and a set
of faulty processes, and assumes (Assumption 1) that every round-based
problem requires the correct processes to agree on the round number and
advance it by one per round.  This module makes those predicates
executable: each :class:`Problem` checks a recorded
:class:`~repro.histories.history.ExecutionHistory` (or any window of
one) against a given faulty set and reports each violation with the
round it occurred in.

Provided problems:

- :class:`ClockAgreementProblem` — exactly Assumption 1 (agreement +
  rate on the round variables of non-faulty processes).  This is the Σ
  that the round agreement protocol (Figure 1) ftss-solves.
- :class:`ConsensusProblem` — single-shot consensus (agreement,
  validity, termination), evaluated over the decisions non-faulty
  processes record in their states.
- :class:`RepeatedConsensusProblem` — Σ⁺ for the compiler: the window
  decomposes into iterations of ``final_round`` rounds, each complete
  iteration satisfying consensus.
- :class:`UniformityCondition` — Assumption 2 (faulty processes have
  halted or agree on the round number), used by the Theorem 2
  demonstration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional

from repro.histories.history import ExecutionHistory

__all__ = [
    "Violation",
    "CheckReport",
    "Problem",
    "ClockAgreementProblem",
    "ConsensusProblem",
    "RepeatedConsensusProblem",
    "UniformityCondition",
]

ProcessId = int

#: Key under which protocol states record a consensus decision.
DECISION_KEY = "decision"
#: Key under which protocol states record the value they proposed.
PROPOSAL_KEY = "proposal"
#: Key marking a voluntarily halted process (uniform protocols).
HALTED_KEY = "halted"


@dataclass(frozen=True)
class Violation:
    """One point at which a predicate failed."""

    round_no: int
    condition: str
    description: str

    def __str__(self) -> str:
        return f"[round {self.round_no}] {self.condition}: {self.description}"


@dataclass
class CheckReport:
    """The outcome of evaluating Σ(H, F)."""

    problem: str
    holds: bool
    violations: List[Violation] = field(default_factory=list)

    @staticmethod
    def from_violations(problem: str, violations: List[Violation]) -> "CheckReport":
        return CheckReport(
            problem=problem, holds=not violations, violations=violations
        )

    def first_violation_round(self) -> Optional[int]:
        if not self.violations:
            return None
        return min(v.round_no for v in self.violations)

    def __bool__(self) -> bool:
        return self.holds


class Problem(ABC):
    """A problem Σ: a predicate on (history, faulty set)."""

    name: str = "problem"

    @abstractmethod
    def check(self, history: ExecutionHistory, faulty: FrozenSet[ProcessId]) -> CheckReport:
        """Evaluate Σ(history, faulty) and report all violations."""

    def holds(self, history: ExecutionHistory, faulty: FrozenSet[ProcessId]) -> bool:
        return self.check(history, faulty).holds


def _live_nonfaulty(
    history: ExecutionHistory, round_no: int, faulty: FrozenSet[ProcessId]
) -> Dict[ProcessId, int]:
    """Round variables of non-faulty, non-crashed processes at round start."""
    clocks = {}
    for pid, clock in history.clocks(round_no).items():
        if pid in faulty or clock is None:
            continue
        clocks[pid] = clock
    return clocks


class ClockAgreementProblem(Problem):
    """Assumption 1 as a problem: round agreement plus unit rate.

    - *Agreement*: for every round ``r`` of the history, all non-faulty
      processes have equal round variables ``c_p^r``.
    - *Rate*: for consecutive rounds within the history, every
      non-faulty process advanced its round variable by exactly one.

    Because of systemic failures, ``c_p^r`` need not equal the actual
    round number ``r`` — only mutual agreement and unit rate are
    required.
    """

    name = "clock-agreement"

    def check(
        self, history: ExecutionHistory, faulty: FrozenSet[ProcessId]
    ) -> CheckReport:
        violations: List[Violation] = []
        for round_no in range(history.first_round, history.last_round + 1):
            clocks = _live_nonfaulty(history, round_no, faulty)
            if len(set(clocks.values())) > 1:
                violations.append(
                    Violation(
                        round_no=round_no,
                        condition="agreement",
                        description=f"non-faulty round variables differ: {clocks}",
                    )
                )
            if round_no < history.last_round:
                nxt = _live_nonfaulty(history, round_no + 1, faulty)
                for pid, clock in clocks.items():
                    if pid in nxt and nxt[pid] != clock + 1:
                        violations.append(
                            Violation(
                                round_no=round_no,
                                condition="rate",
                                description=(
                                    f"process {pid} moved its round variable "
                                    f"{clock} -> {nxt[pid]} (must be +1)"
                                ),
                            )
                        )
        return CheckReport.from_violations(self.name, violations)


class BoundedSkewAgreementProblem(Problem):
    """Assumption 1 relaxed for not-perfectly-synchronized systems.

    With message delivery taking up to ``1 + skew`` rounds, exact
    lockstep agreement on round variables is unattainable — a
    permanently lagged link holds its receiver exactly one round
    behind (see :mod:`repro.sync.delays`).  The adapted problem:

    - *skew-agreement*: at every round, the round variables of
      non-faulty processes span at most ``skew``;
    - *bounded rate*: every non-faulty process advances by at least 1
      and at most ``1 + skew`` per round (a process one round behind
      the pack may catch up with a ``+2`` jump when a late copy of the
      maximum finally lands).

    With ``skew=0`` this is exactly :class:`ClockAgreementProblem`.
    """

    def __init__(self, skew: int):
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew}")
        self.skew = skew
        self.name = f"clock-agreement-skew-{skew}"

    def check(
        self, history: ExecutionHistory, faulty: FrozenSet[ProcessId]
    ) -> CheckReport:
        violations: List[Violation] = []
        for round_no in range(history.first_round, history.last_round + 1):
            clocks = _live_nonfaulty(history, round_no, faulty)
            if clocks and max(clocks.values()) - min(clocks.values()) > self.skew:
                violations.append(
                    Violation(
                        round_no=round_no,
                        condition="skew-agreement",
                        description=(
                            f"round-variable spread "
                            f"{max(clocks.values()) - min(clocks.values())} "
                            f"exceeds skew {self.skew}: {clocks}"
                        ),
                    )
                )
            if round_no < history.last_round:
                nxt = _live_nonfaulty(history, round_no + 1, faulty)
                for pid, clock in clocks.items():
                    if pid in nxt and not 1 <= nxt[pid] - clock <= 1 + self.skew:
                        violations.append(
                            Violation(
                                round_no=round_no,
                                condition="bounded-rate",
                                description=(
                                    f"process {pid} moved its round variable "
                                    f"{clock} -> {nxt[pid]} (must advance by "
                                    f"1..{1 + self.skew})"
                                ),
                            )
                        )
        return CheckReport.from_violations(self.name, violations)


class ConsensusProblem(Problem):
    """Single-shot consensus over recorded decisions.

    Decisions and proposals are read from process states under
    :data:`DECISION_KEY` / :data:`PROPOSAL_KEY` (overridable via
    extractor callbacks, for protocols with different state layouts).

    - *Agreement*: no two non-faulty processes decide differently.
    - *Validity*: every non-faulty decision is some process's proposal.
    - *Termination*: every non-faulty process has decided by the last
      round of the history (set ``require_termination=False`` to check a
      window that legitimately ends mid-protocol).
    """

    name = "consensus"

    def __init__(
        self,
        decision_of: Optional[Callable[[Dict[str, Any]], Any]] = None,
        proposal_of: Optional[Callable[[Dict[str, Any]], Any]] = None,
        require_termination: bool = True,
        valid_proposals: Optional[frozenset] = None,
    ):
        self._decision_of = decision_of or (lambda s: s.get(DECISION_KEY))
        self._proposal_of = proposal_of or (lambda s: s.get(PROPOSAL_KEY))
        self.require_termination = require_termination
        self._valid_proposals = valid_proposals

    def check(
        self, history: ExecutionHistory, faulty: FrozenSet[ProcessId]
    ) -> CheckReport:
        violations: List[Violation] = []
        last = history.last_round
        decisions: Dict[ProcessId, Any] = {}
        proposals: set = set(self._valid_proposals or ())

        for round_no in range(history.first_round, last + 1):
            for record in history.round(round_no).records:
                if record.state_before is None:
                    continue
                proposal = self._proposal_of(record.state_before)
                if proposal is not None and self._valid_proposals is None:
                    proposals.add(proposal)

        for record in history.round(last).records:
            if record.pid in faulty or record.state_before is None:
                continue
            decision = self._decision_of(record.state_before)
            if decision is None:
                if self.require_termination:
                    violations.append(
                        Violation(
                            round_no=last,
                            condition="termination",
                            description=f"process {record.pid} has not decided",
                        )
                    )
                continue
            decisions[record.pid] = decision
            if proposals and decision not in proposals:
                violations.append(
                    Violation(
                        round_no=last,
                        condition="validity",
                        description=(
                            f"process {record.pid} decided {decision!r}, "
                            f"not among proposals {sorted(map(repr, proposals))}"
                        ),
                    )
                )
        if len(set(decisions.values())) > 1:
            violations.append(
                Violation(
                    round_no=last,
                    condition="agreement",
                    description=f"non-faulty decisions differ: {decisions}",
                )
            )
        return CheckReport.from_violations(self.name, violations)


class RepeatedConsensusProblem(Problem):
    """Σ⁺ for a consensus protocol compiled with Figure 3.

    The compiled protocol records, in each process state, the decision
    of the most recently *completed* iteration (``last_decision``) and
    the clock value at which it completed (``decided_at_clock``); see
    :mod:`repro.core.compiler`.  Σ⁺ holds on a window iff:

    - Assumption 1 (clock agreement + rate) holds throughout, and
    - for every iteration that completes inside the window, the
      decisions recorded by non-faulty processes for that iteration
      agree and are valid proposals.

    Partial iterations at the window edges are constrained only by
    Assumption 1, matching the compiler's stabilization-time contract
    (stabilization ``final_round`` means the first complete iteration
    after the grace period must already be correct).
    """

    name = "repeated-consensus"

    def __init__(self, final_round: int, valid_proposals: Optional[frozenset] = None):
        self.final_round = final_round
        self._valid_proposals = valid_proposals
        self._clock_agreement = ClockAgreementProblem()

    def check(
        self, history: ExecutionHistory, faulty: FrozenSet[ProcessId]
    ) -> CheckReport:
        report = self._clock_agreement.check(history, faulty)
        violations = list(report.violations)

        # Group recorded iteration decisions by the clock at which the
        # iteration completed; each group must agree.  Only *fresh
        # writes* count: a journal entry already present when the
        # window opens was written during the grace period (or planted
        # by the systemic failure itself) and is not this window's
        # obligation.  A fresh write shows up as a change of the
        # (decided_at_clock, last_decision) pair between two
        # consecutive rounds of the window.
        iteration_decisions: Dict[int, Dict[ProcessId, Any]] = {}
        decision_rounds: Dict[int, int] = {}
        for round_no in range(history.first_round, history.last_round):
            for record in history.round(round_no).records:
                after = history.round(round_no + 1).record(record.pid)
                if record.pid in faulty or after.state_before is None:
                    continue
                decided_at = after.state_before.get("decided_at_clock")
                decision = after.state_before.get("last_decision")
                if decided_at is None or decision is None:
                    continue
                before_state = record.state_before or {}
                unchanged = (
                    before_state.get("decided_at_clock") == decided_at
                    and before_state.get("last_decision") == decision
                )
                if unchanged:
                    continue
                iteration_decisions.setdefault(decided_at, {})[record.pid] = decision
                decision_rounds.setdefault(decided_at, round_no)

        for decided_at, decisions in sorted(iteration_decisions.items()):
            where = decision_rounds[decided_at]
            if len(set(decisions.values())) > 1:
                violations.append(
                    Violation(
                        round_no=where,
                        condition="iteration-agreement",
                        description=(
                            f"iteration completing at clock {decided_at}: "
                            f"non-faulty decisions differ: {decisions}"
                        ),
                    )
                )
            if self._valid_proposals is not None:
                for pid, decision in decisions.items():
                    if decision not in self._valid_proposals:
                        violations.append(
                            Violation(
                                round_no=where,
                                condition="iteration-validity",
                                description=(
                                    f"iteration at clock {decided_at}: process "
                                    f"{pid} decided {decision!r}, not a proposal"
                                ),
                            )
                        )
        return CheckReport.from_violations(self.name, violations)


class ConjunctionProblem(Problem):
    """Σ = Σ₁ ∧ Σ₂ ∧ …: all component predicates must hold.

    Used e.g. to state "clock agreement *under the uniformity
    assumption*" (Assumption 1 ∧ Assumption 2) for the Theorem 2
    demonstration.
    """

    def __init__(self, *components: Problem):
        if not components:
            raise ValueError("a conjunction needs at least one component")
        self.components = components
        self.name = " & ".join(c.name for c in components)

    def check(
        self, history: ExecutionHistory, faulty: FrozenSet[ProcessId]
    ) -> CheckReport:
        violations: List[Violation] = []
        for component in self.components:
            violations.extend(component.check(history, faulty).violations)
        return CheckReport.from_violations(self.name, violations)


class UniformityCondition(Problem):
    """Assumption 2: faulty processes have halted or agree on the round.

    A process is considered halted if it crashed or its state carries a
    truthy :data:`HALTED_KEY`.  The condition is evaluated per round
    against the round variable shared by the non-faulty processes (if
    the non-faulty processes themselves disagree, Assumption 1 is
    already violated and this check reports nothing extra for that
    round).
    """

    name = "uniformity"

    def check(
        self, history: ExecutionHistory, faulty: FrozenSet[ProcessId]
    ) -> CheckReport:
        violations: List[Violation] = []
        for round_no in range(history.first_round, history.last_round + 1):
            correct_clocks = set(
                _live_nonfaulty(history, round_no, faulty).values()
            )
            if len(correct_clocks) != 1:
                continue
            (reference,) = correct_clocks
            for record in history.round(round_no).records:
                if record.pid not in faulty:
                    continue
                if record.state_before is None:
                    continue  # crashed counts as halted
                if record.state_before.get(HALTED_KEY):
                    continue
                if record.clock_before != reference:
                    violations.append(
                        Violation(
                            round_no=round_no,
                            condition="uniformity",
                            description=(
                                f"faulty process {record.pid} is running with "
                                f"round variable {record.clock_before} != "
                                f"{reference} and has not halted"
                            ),
                        )
                    )
        return CheckReport.from_violations(self.name, violations)
