"""The round agreement protocol (paper, Figure 1) and ablation variants.

Figure 1, verbatim:

    At the start of round r:
        p sends (ROUND: p, c_p^r) to all
    At the end of round r:
        R := {c | p received (ROUND: q, c) in this round}
        c_p^{r+1} := max(R) + 1

Theorem 3: this is a ftss protocol with stabilization time **1 round**
that ensures all correct processes agree on the current round number.
The max-merge is the load-bearing choice: a process whose corrupted
round variable is *ahead* drags everyone forward in one round (and, in
doing so, enters the coterie — the de-stabilizing event after which the
one-round clock starts).  The ablation variants below replace the merge
rule and are shown by the tests/benches to fail the Theorem 3 scenario
family:

- :class:`MinMergeRoundProtocol` — adopting the *minimum*.  A genuine
  reproduction finding (recorded in EXPERIMENTS.md): in the paper's
  fully-connected, unit-rate model this is empirically *symmetric* to
  the max rule for the standalone clock-agreement problem — the +1
  increment per round exactly compensates the one-round propagation
  delay, so whichever extremal timeline wins, everyone locks onto it
  within a round of the coterie change.  What the max rule uniquely
  buys is **monotonicity**: a correct process's round variable never
  decreases, so the compiled protocol never replays a protocol round
  ``k`` it already executed.  Under min-merge a lurking laggard drags
  clocks *backwards* (the monotonicity bench measures this), which
  would make Figure 3's iteration accounting (journaled decisions,
  resets crossed more than once) ill-founded.
- :class:`FreeRunningRoundProtocol` — ignoring other processes entirely
  (``c := c + 1``) preserves rate but can never re-establish agreement
  after a systemic failure: skews persist forever.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Mapping, Sequence

from repro.histories.history import CLOCK_KEY, Message
from repro.sync.protocol import SyncProtocol

__all__ = [
    "RoundAgreementProtocol",
    "MinMergeRoundProtocol",
    "FreeRunningRoundProtocol",
]


class RoundAgreementProtocol(SyncProtocol):
    """Figure 1: broadcast your round number, adopt ``max(R) + 1``.

    The state is exactly the round variable.  ``R`` is never empty for
    an alive process because every process receives its own broadcast
    (paper footnote 1, enforced by the engine).
    """

    name = "round-agreement"

    def __init__(self, max_corrupt_clock: int = 1 << 20):
        #: Upper bound used only by the corruption generator; the
        #: protocol itself runs on unbounded integers (paper §2.4
        #: requires an unbounded round counter).
        self.max_corrupt_clock = max_corrupt_clock

    def initial_state(self, pid: int, n: int) -> Dict[str, Any]:
        return {CLOCK_KEY: 1}

    def send(self, pid: int, state: Mapping[str, Any]) -> Any:
        return state[CLOCK_KEY]

    def update(
        self, pid: int, state: Mapping[str, Any], delivered: Sequence[Message]
    ) -> Dict[str, Any]:
        rounds_seen = {message.payload for message in delivered}
        if not rounds_seen:
            # Unreachable under the engine's self-delivery guarantee;
            # degrade to free-running rather than crash.
            rounds_seen = {state[CLOCK_KEY]}
        return {CLOCK_KEY: max(rounds_seen) + 1}

    def arbitrary_state(self, pid: int, n: int, rng: random.Random) -> Dict[str, Any]:
        return {CLOCK_KEY: rng.randrange(0, self.max_corrupt_clock)}


class MinMergeRoundProtocol(RoundAgreementProtocol):
    """Ablation: adopt ``min(R) + 1`` instead of the max.

    Empirically satisfies the same ftss clock-agreement property as
    Figure 1 in this model (see the module docstring — a reproduction
    finding), but sacrifices monotonicity: a stale laggard revealing
    itself yanks correct clocks *backwards*, so the round variable is
    no longer a progress measure.  Kept as the ablation subject for
    the merge-rule bench.
    """

    name = "round-agreement-min"

    def update(
        self, pid: int, state: Mapping[str, Any], delivered: Sequence[Message]
    ) -> Dict[str, Any]:
        rounds_seen = {message.payload for message in delivered}
        if not rounds_seen:
            rounds_seen = {state[CLOCK_KEY]}
        return {CLOCK_KEY: min(rounds_seen) + 1}


class FreeRunningRoundProtocol(RoundAgreementProtocol):
    """Ablation: ignore everyone, ``c := c + 1``.

    Perfect rate, zero convergence: after a systemic failure the skew
    between round variables persists forever.  This is the "no-merge"
    horn of the Theorem 1 dichotomy — in the failure-free twin
    execution the agreement condition of Assumption 1 is violated at
    every round.
    """

    name = "round-free-running"

    def update(
        self, pid: int, state: Mapping[str, Any], delivered: Sequence[Message]
    ) -> Dict[str, Any]:
        return {CLOCK_KEY: state[CLOCK_KEY] + 1}
