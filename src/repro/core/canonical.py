"""The canonical fault-tolerant full-information protocol Π (Figure 2).

The compiler only transforms protocols in the paper's canonical form:

    Initialization:  s_p^1 := s_{p,init};  c_p^1 := 1
    Start of round:  p sends (STATE: p, s_p^r) to all
    End of round:    M := messages received this round
                     s_p^{r+1} := function(p, s_p^r, M, c_p^r)
                     c_p^{r+1} := c_p^r + 1
                     if c_p^r = final_round then halt

A :class:`CanonicalProtocol` supplies exactly the pieces of that form —
``s_init``, ``function`` and ``final_round`` — and nothing else: no
clock management, no halting, no network interaction.  Two consumers
drive it:

- :class:`CanonicalRunner` executes Figure 2 *as written* (terminating,
  halting in the final round) on the synchronous engine.  This is the
  ft-baseline: correct under process failures from the good initial
  state, defenceless against systemic failures.
- :func:`repro.core.compiler.compile_protocol` superimposes round
  agreement onto it, producing the non-terminating Π⁺ of Figure 3.

The restrictions the paper places on compilable protocols are enforced
here by construction: the protocol is round-based and full-information
(state-broadcasting); it cannot restrict faulty behaviour (it has no
notion of halting others — Theorem 2 makes uniform protocols
untransformable); and the round counter lives in an unbounded Python
int.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.histories.history import CLOCK_KEY, Message
from repro.sync.protocol import SyncProtocol

__all__ = ["CanonicalProtocol", "CanonicalRunner", "StateMessage"]

#: Full-information payload: (sender pid, sender's inner state).
StateMessage = Tuple[int, Dict[str, Any]]

INNER_KEY = "inner"
HALTED_KEY = "halted"


class CanonicalProtocol(ABC):
    """The (s_init, function, final_round) triple of Figure 2.

    ``transition`` must be a pure function of its arguments: the engine
    and the compiler both call it with defensively-copied inputs, and
    they rely on it returning a fresh state rather than mutating.

    Subclasses may override :meth:`arbitrary_inner_state` so systemic
    failures range over their full state space.
    """

    #: Human-readable name for reports.
    name: str = "canonical"
    #: Duration of one terminating run, in rounds (Figure 2's final_round).
    final_round: int = 1

    @abstractmethod
    def initial_inner_state(self, pid: int, n: int) -> Dict[str, Any]:
        """``s_{p,init}``: the specified initial state (no clock)."""

    @abstractmethod
    def transition(
        self,
        pid: int,
        inner_state: Mapping[str, Any],
        messages: Sequence[StateMessage],
        k: int,
        n: int,
    ) -> Dict[str, Any]:
        """``function(p, s, M, k)``: the end-of-round state update.

        ``messages`` holds (sender, sender_state) pairs — the protocol
        is full-information, every process broadcasts its entire state.
        ``k`` is the protocol-relative round in ``1 .. final_round``.
        """

    # ------------------------------------------------------------------

    def arbitrary_inner_state(
        self, pid: int, n: int, rng: random.Random
    ) -> Dict[str, Any]:
        """An arbitrary state in the protocol's state space (for corruption)."""
        return self.initial_inner_state(pid, n)

    def decision_of(self, inner_state: Mapping[str, Any]) -> Optional[Any]:
        """Extract a decision, if this protocol records one (default key)."""
        return inner_state.get("decision")


class CanonicalRunner(SyncProtocol):
    """Figure 2 executed literally: a terminating, halting run of Π.

    State layout: ``{"clock": c_p, "inner": s_p, "halted": bool}``.
    After halting the process broadcasts nothing and its state is
    frozen — exactly the paper's ``halt``.  Terminating protocols
    cannot tolerate systemic failures ([KP90], cited in the paper), and
    the test-suite demonstrates that directly against this runner.
    """

    def __init__(self, canonical: CanonicalProtocol):
        self.canonical = canonical
        self.name = f"ft:{canonical.name}"

    def initial_state(self, pid: int, n: int) -> Dict[str, Any]:
        return {
            CLOCK_KEY: 1,
            INNER_KEY: self.canonical.initial_inner_state(pid, n),
            HALTED_KEY: False,
            "n": n,
        }

    def send(self, pid: int, state: Mapping[str, Any]) -> Any:
        if state[HALTED_KEY]:
            return None
        return (pid, dict(state[INNER_KEY]))

    def update(
        self, pid: int, state: Mapping[str, Any], delivered: Sequence[Message]
    ) -> Dict[str, Any]:
        if state[HALTED_KEY]:
            return dict(state)
        messages: List[StateMessage] = [m.payload for m in delivered]
        clock = state[CLOCK_KEY]
        inner = self.canonical.transition(
            pid, state[INNER_KEY], messages, clock, state["n"]
        )
        return {
            CLOCK_KEY: clock + 1,
            INNER_KEY: inner,
            HALTED_KEY: clock == self.canonical.final_round,
            "n": state["n"],
        }

    def arbitrary_state(self, pid: int, n: int, rng: random.Random) -> Dict[str, Any]:
        return {
            CLOCK_KEY: rng.randrange(0, 4 * self.canonical.final_round),
            INNER_KEY: self.canonical.arbitrary_inner_state(pid, n, rng),
            HALTED_KEY: rng.random() < 0.25,
            "n": n,
        }

    def decision_of(self, state: Mapping[str, Any]) -> Optional[Any]:
        """Decision recorded by the wrapped protocol, if any."""
        return self.canonical.decision_of(state[INNER_KEY])


def run_ft(canonical: CanonicalProtocol, n: int, adversary=None, **kwargs):
    """Run Figure 2 once and return the finished run.

    Histories record states *at the start of* each round, so the state
    produced by the final-round transition is only visible in the round
    after it — this helper therefore executes ``final_round + 1``
    rounds (the extra round is the halt round: processes are frozen and
    silent).  Problem predicates evaluated on the resulting history see
    the decisions.
    """
    from repro.sync.engine import run_sync

    runner = CanonicalRunner(canonical)
    return run_sync(
        runner, n=n, rounds=canonical.final_round + 1, adversary=adversary, **kwargs
    )
