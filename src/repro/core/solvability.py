"""Executable solvability definitions (paper, Section 2.1).

Four checkers, one per definition:

- :func:`ft_check` — Definition 2.1 (``ft-solves``): Σ(H, F(H, Π)) on
  the whole history; for systems with process failures only.
- :func:`ss_check` — Definition 2.2 (``ss-solves`` with stabilization
  time r): Σ(H'', ∅) on the r-suffix; systemic failures only.
- :func:`tentative_check` — Tentative Definition 1 (the "natural" but
  too-weak combination): Σ(H'', F(H, Π)) on the r-suffix.  Kept
  precisely so Theorem 1's impossibility can be demonstrated against
  it.
- :func:`ftss_check` — Definition 2.4 (``ftss-solves``, piecewise
  stability): over every maximal stable-coterie window longer than the
  stabilization time, Σ must hold on the window minus its grace prefix,
  with the faulty set accumulated from the start of the history through
  the window's end.

A single run can only *refute* a universally-quantified definition (one
history is one ∀-instance); the test-suite and benchmark sweeps supply
the breadth.  Each checker therefore returns rich reports rather than
bare booleans, so sweeps can aggregate violation structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.problems import CheckReport, Problem
from repro.histories.history import ExecutionHistory
from repro.histories.stability import StableWindow, stable_windows
from repro.util.validation import require_non_negative

__all__ = [
    "DEFINITIONS",
    "DefinitionVerdict",
    "WindowOutcome",
    "FtssReport",
    "check_definition",
    "ft_check",
    "ss_check",
    "tentative_check",
    "ftss_check",
]


def ft_check(history: ExecutionHistory, problem: Problem) -> CheckReport:
    """Definition 2.1: Σ(H, F(H, Π)) over the full history."""
    return problem.check(history, history.faulty())


def ss_check(
    history: ExecutionHistory, problem: Problem, stabilization_time: int
) -> CheckReport:
    """Definition 2.2: Σ(H'', ∅) where H'' is the r-suffix of H.

    Only meaningful for process-failure-free runs; the empty faulty set
    is passed regardless, per the definition.
    """
    require_non_negative(stabilization_time, "stabilization_time")
    if stabilization_time >= len(history):
        return CheckReport(
            problem=problem.name,
            holds=True,
            violations=[],
        )
    suffix = history.suffix(stabilization_time)
    return problem.check(suffix, frozenset())


def tentative_check(
    history: ExecutionHistory, problem: Problem, stabilization_time: int
) -> CheckReport:
    """Tentative Definition 1: Σ(H'', F(H, Π)) on the r-suffix.

    The faulty set comes from the *whole* history — this is what makes
    the definition too weak-to-satisfy: a process can stay hidden past
    any finite r and then destabilize the suffix (Theorem 1).
    """
    require_non_negative(stabilization_time, "stabilization_time")
    if stabilization_time >= len(history):
        return CheckReport(problem=problem.name, holds=True, violations=[])
    suffix = history.suffix(stabilization_time)
    return problem.check(suffix, history.faulty())


@dataclass
class WindowOutcome:
    """Σ's verdict on one stable-coterie window."""

    window: StableWindow
    obligation_span: Optional[tuple]
    report: Optional[CheckReport]

    @property
    def obliged(self) -> bool:
        """Whether the window was long enough to owe anything."""
        return self.obligation_span is not None

    @property
    def holds(self) -> bool:
        return self.report is None or self.report.holds


@dataclass
class FtssReport:
    """The verdict of :func:`ftss_check` across all stable windows."""

    problem: str
    stabilization_time: int
    outcomes: List[WindowOutcome] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return all(outcome.holds for outcome in self.outcomes)

    @property
    def obliged_windows(self) -> List[WindowOutcome]:
        return [o for o in self.outcomes if o.obliged]

    def violations(self) -> List[str]:
        out = []
        for outcome in self.outcomes:
            if outcome.report is None:
                continue
            for violation in outcome.report.violations:
                out.append(
                    f"window [{outcome.window.first_round}, "
                    f"{outcome.window.last_round}] {violation}"
                )
        return out

    def __bool__(self) -> bool:
        return self.holds


def ftss_check(
    history: ExecutionHistory, problem: Problem, stabilization_time: int
) -> FtssReport:
    """Definition 2.4: piecewise stability with stabilization time r.

    The coterie is monotone over prefixes (proved in
    :mod:`repro.histories.coterie` and property-tested), so the
    definition's quantification over all decompositions
    ``H = H1·H2·H3·H4`` reduces to: for every maximal constant-coterie
    window ``[x, y]`` with ``y - x >= r``, Σ must hold on rounds
    ``(x + r, y]`` with faulty set F(prefix of H through y).
    """
    require_non_negative(stabilization_time, "stabilization_time")
    faulty_by_round = history.faulty_by_round()
    outcomes: List[WindowOutcome] = []
    for window in stable_windows(history):
        span = window.obligation_span(stabilization_time)
        if span is None:
            outcomes.append(
                WindowOutcome(window=window, obligation_span=None, report=None)
            )
            continue
        first, last = span
        sub_history = history.window(first, last)
        faulty = faulty_by_round[last - history.first_round]
        report = problem.check(sub_history, faulty)
        outcomes.append(
            WindowOutcome(window=window, obligation_span=span, report=report)
        )
    return FtssReport(
        problem=problem.name,
        stabilization_time=stabilization_time,
        outcomes=outcomes,
    )


#: The definition vocabulary accepted by :func:`check_definition`.
DEFINITIONS = ("ft", "ss", "tentative", "ftss")


@dataclass(frozen=True)
class DefinitionVerdict:
    """A uniform, definition-agnostic verdict for sweep drivers.

    The four checkers return three different report shapes; callers
    that iterate over *definitions* (the exploration engine, the
    edge-case tests) want one.  ``violations`` are rendered strings —
    deterministic, picklable, and JSON-able, which is what replayable
    artifacts need.
    """

    definition: str
    holds: bool
    violations: "tuple" = ()

    def __bool__(self) -> bool:
        return self.holds


def check_definition(
    definition: str,
    history: ExecutionHistory,
    problem: Problem,
    stabilization_time: int = 0,
) -> DefinitionVerdict:
    """Evaluate one named solvability definition on a recorded history.

    ``definition`` is one of :data:`DEFINITIONS`; ``stabilization_time``
    is ignored by ``"ft"`` (Definition 2.1 has no grace parameter).
    """
    if definition == "ft":
        report = ft_check(history, problem)
        violations = tuple(str(v) for v in report.violations)
        return DefinitionVerdict("ft", report.holds, violations)
    if definition == "ss":
        report = ss_check(history, problem, stabilization_time)
        violations = tuple(str(v) for v in report.violations)
        return DefinitionVerdict("ss", report.holds, violations)
    if definition == "tentative":
        report = tentative_check(history, problem, stabilization_time)
        violations = tuple(str(v) for v in report.violations)
        return DefinitionVerdict("tentative", report.holds, violations)
    if definition == "ftss":
        ftss = ftss_check(history, problem, stabilization_time)
        return DefinitionVerdict("ftss", ftss.holds, tuple(ftss.violations()))
    raise ValueError(
        f"unknown definition {definition!r}; expected one of {DEFINITIONS}"
    )
