"""Executable renderings of the paper's impossibility arguments.

Theorems 1 and 2 are proofs by scenario: the adversary builds two (or
three) executions that a process cannot tell apart, such that any
protocol behaviour violates the specification in at least one of them.
This module constructs exactly those executions on the synchronous
simulator, so the tests and benches can *run* the dichotomy rather than
merely assert it.

Theorem 1 (no finite stabilization time under Tentative Definition 1)
---------------------------------------------------------------------
Two processes start with different round variables (systemic failure);
one stays silent for ``r`` rounds (omission failures) and then reveals
itself.  The dichotomy over merge behaviours:

- a protocol that *merges* round numbers (Figure 1's max-merge) has the
  correct process's clock jump when the hidden process reveals — a rate
  violation inside the r-suffix, for every finite candidate ``r``;
- a protocol that *ignores* others (free-running) keeps perfect rate
  but, in the failure-free twin execution, never re-establishes
  agreement — an agreement violation at every round of the suffix.

Either way Tentative Definition 1 fails; and the same merge history
**passes** ``ftss_check`` with stabilization time 1, because the reveal
is a coterie change that resets the obligation window (the paper's
point: the coterie change *is* the de-stabilizing event).

Theorem 2 (uniform protocols cannot ftss-solve anything)
--------------------------------------------------------
A process that hears only itself cannot distinguish "I am the faulty
one and must halt" (uniformity, Assumption 2) from "the other process
is faulty and I must keep running" (rate, Assumption 1).  We build the
two scenarios with **identical local views** for the pivot process; for
any local halting rule, one of the scenarios is violated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.core.problems import (
    ClockAgreementProblem,
    CheckReport,
    ConjunctionProblem,
    HALTED_KEY,
    UniformityCondition,
)
from repro.core.rounds import FreeRunningRoundProtocol, RoundAgreementProtocol
from repro.core.solvability import FtssReport, ftss_check, tentative_check
from repro.histories.history import CLOCK_KEY, ExecutionHistory
from repro.sync.adversary import RoundFaultPlan, ScriptedAdversary
from repro.sync.corruption import ClockSkewCorruption
from repro.sync.engine import run_sync
from repro.util.validation import require, require_positive

__all__ = [
    "Theorem1Outcome",
    "Theorem2Outcome",
    "UniformRoundAgreement",
    "theorem1_scenario",
    "theorem2_scenario",
    "local_view",
]

#: The pivot process (the one whose view the adversary controls).
PIVOT = 0
#: Its peer.
PEER = 1


# ---------------------------------------------------------------------------
# Theorem 1
# ---------------------------------------------------------------------------


@dataclass
class Theorem1Outcome:
    """The full dichotomy for one candidate stabilization time."""

    candidate_stabilization: int
    #: Max-merge protocol, hidden-then-reveal scenario.
    merge_history: ExecutionHistory
    merge_tentative: CheckReport
    merge_ftss: FtssReport
    #: Free-running protocol, failure-free skewed twin.
    twin_history: ExecutionHistory
    twin_tentative: CheckReport

    @property
    def tentative_defeated(self) -> bool:
        """True iff both horns violate Tentative Definition 1."""
        return not self.merge_tentative.holds and not self.twin_tentative.holds

    @property
    def ftss_survives(self) -> bool:
        """True iff the very same merge history satisfies Definition 2.4."""
        return self.merge_ftss.holds


def theorem1_scenario(
    candidate_stabilization: int,
    skew: int = 100,
    rounds_after_reveal: int = 8,
) -> Theorem1Outcome:
    """Build the Theorem 1 scenario pair for one candidate ``r``.

    The hidden process starts *ahead* by ``skew`` (the proof's process
    ``u`` with the larger corrupted round number) and reveals itself in
    round ``r + 1`` — the first round of the r-suffix, the earliest
    point at which the tentative definition starts owing anything.
    """
    r = require_positive(candidate_stabilization, "candidate_stabilization")
    require(skew > 0, "the hidden process must be ahead for the merge horn")
    require_positive(rounds_after_reveal, "rounds_after_reveal")
    sigma = ClockAgreementProblem()
    n = 2
    total_rounds = r + rounds_after_reveal

    # Horn 1: merge protocol, hidden peer ahead by `skew`.
    corruption = ClockSkewCorruption({PIVOT: 1, PEER: 1 + skew})
    adversary = ScriptedAdversary.silence([PEER], range(1, r + 1), n=n)
    merge_run = run_sync(
        RoundAgreementProtocol(),
        n=n,
        rounds=total_rounds,
        adversary=adversary,
        corruption=corruption,
    )
    merge_tentative = tentative_check(merge_run.history, sigma, r)
    merge_ftss = ftss_check(merge_run.history, sigma, stabilization_time=1)

    # Horn 2: free-running protocol, failure-free, same initial skew.
    twin_run = run_sync(
        FreeRunningRoundProtocol(),
        n=n,
        rounds=total_rounds,
        corruption=corruption,
    )
    twin_tentative = tentative_check(twin_run.history, sigma, r)

    return Theorem1Outcome(
        candidate_stabilization=r,
        merge_history=merge_run.history,
        merge_tentative=merge_tentative,
        merge_ftss=merge_ftss,
        twin_history=twin_run.history,
        twin_tentative=twin_tentative,
    )


# ---------------------------------------------------------------------------
# Theorem 2
# ---------------------------------------------------------------------------


class UniformRoundAgreement(RoundAgreementProtocol):
    """Round agreement plus a local "self-check and halt" rule.

    A uniform protocol must ensure faulty processes halt before doing
    harm (Assumption 2).  The only information a process has is its
    local view, so any such rule is a predicate over that view; we
    parameterize by the simplest family — "halt after hearing nobody
    but myself for ``patience`` consecutive rounds" (``patience=None``
    never halts).  Theorem 2 says *no* member of this family (or any
    other local rule) can work; :func:`theorem2_scenario` runs the two
    indistinguishable executions that together defeat each member.
    """

    def __init__(self, patience: Optional[int]):
        super().__init__()
        if patience is not None:
            require_positive(patience, "patience")
        self.patience = patience
        self.name = (
            "uniform-round-agreement-never"
            if patience is None
            else f"uniform-round-agreement-T{patience}"
        )

    def initial_state(self, pid: int, n: int) -> dict:
        return {CLOCK_KEY: 1, "lonely_rounds": 0, HALTED_KEY: False}

    def send(self, pid: int, state) -> Any:
        if state[HALTED_KEY]:
            return None
        return state[CLOCK_KEY]

    def update(self, pid: int, state, delivered) -> dict:
        if state[HALTED_KEY]:
            return dict(state)
        rounds_seen = {m.payload for m in delivered}
        heard_others = any(m.sender != pid for m in delivered)
        lonely = 0 if heard_others else state["lonely_rounds"] + 1
        if not rounds_seen:
            rounds_seen = {state[CLOCK_KEY]}
        halted = self.patience is not None and lonely >= self.patience
        return {
            CLOCK_KEY: state[CLOCK_KEY] if halted else max(rounds_seen) + 1,
            "lonely_rounds": lonely,
            HALTED_KEY: halted,
        }


@dataclass
class Theorem2Outcome:
    """Both indistinguishable scenarios for one halting rule.

    The proof's dichotomy concerns the *pivot's* obligations: in
    scenario A (pivot faulty) Assumption 2 obliges the pivot to halt or
    agree; in scenario B (peer faulty, pivot correct, same local view)
    Assumption 1's rate condition forbids it from halting.  Because the
    views are identical the pivot behaves identically, so at least one
    obligation breaks.  ``pivot_uniform_in_a`` / ``pivot_rate_in_b``
    isolate those two obligations; the full ftss reports are kept as
    supporting evidence (whole-Σ verdicts, which may fail for
    additional reasons — e.g. an isolation-halting rule also halts the
    *correct* peer in scenario A).
    """

    patience: Optional[int]
    #: Scenario A: the pivot is the faulty one (general omission).
    pivot_faulty_history: ExecutionHistory
    pivot_faulty_report: FtssReport
    #: Scenario B: the peer is faulty (send omission); pivot is correct.
    peer_faulty_history: ExecutionHistory
    peer_faulty_report: FtssReport
    #: Whether the pivot's local views coincide (they must).
    views_identical: bool
    #: Did the pivot halt (same in both runs when views are identical)?
    pivot_halted: bool
    #: Scenario A obligation: pivot halted-or-agreeing in the window.
    pivot_uniform_in_a: bool
    #: Scenario B obligation: pivot's clock advanced +1 throughout.
    pivot_rate_in_b: bool

    @property
    def rule_defeated(self) -> bool:
        """True iff at least one pivot obligation breaks — the dichotomy."""
        return not (self.pivot_uniform_in_a and self.pivot_rate_in_b)


def theorem2_scenario(
    patience: Optional[int],
    rounds: int = 12,
    skew: int = 40,
) -> Theorem2Outcome:
    """Run the Theorem 2 indistinguishability pair for one halting rule.

    Scenario A makes the pivot faulty (it omits all sends and
    receives); Assumption 2 then obliges it to halt or agree — it can
    do neither without hearing the peer, unless the rule fires.
    Scenario B silences the *peer's sends only*, leaving the pivot
    correct with the byte-identical local view; Assumption 1's rate
    condition then forbids the pivot from halting.  One obligation must
    break.
    """
    require_positive(rounds, "rounds")
    # Grant the rule the most generous stabilization time that could
    # possibly save it: enough for the halting rule to have fired.  The
    # point of the theorem is that *no* finite grace helps — the other
    # scenario still breaks.
    stabilization_time = 1 if patience is None else patience + 1
    require(
        rounds >= stabilization_time + 3,
        f"need at least {stabilization_time + 3} rounds to exercise the "
        f"obligation window after the grace period",
    )
    n = 2
    protocol_a = UniformRoundAgreement(patience)
    protocol_b = UniformRoundAgreement(patience)
    sigma = ConjunctionProblem(ClockAgreementProblem(), UniformityCondition())
    corruption = ClockSkewCorruption({PIVOT: 1 + skew, PEER: 1})

    everyone = frozenset(range(n))
    # Scenario A: pivot general-omits everything, forever.
    script_a = {
        r: RoundFaultPlan(
            send_omissions={PIVOT: everyone - {PIVOT}},
            receive_omissions={PIVOT: everyone - {PIVOT}},
        )
        for r in range(1, rounds + 1)
    }
    run_a = run_sync(
        protocol_a,
        n=n,
        rounds=rounds,
        adversary=ScriptedAdversary(f=1, script=script_a),
        corruption=corruption,
    )

    # Scenario B: the peer send-omits to the pivot, forever.
    script_b = {
        r: RoundFaultPlan(send_omissions={PEER: frozenset({PIVOT})})
        for r in range(1, rounds + 1)
    }
    run_b = run_sync(
        protocol_b,
        n=n,
        rounds=rounds,
        adversary=ScriptedAdversary(f=1, script=script_b),
        corruption=corruption,
    )

    views_identical = local_view(run_a.history, PIVOT) == local_view(
        run_b.history, PIVOT
    )
    report_a = ftss_check(run_a.history, sigma, stabilization_time)
    report_b = ftss_check(run_b.history, sigma, stabilization_time)

    obligation_rounds = range(stabilization_time + 1, rounds + 1)
    pivot_halted = bool(
        run_a.final_states[PIVOT] and run_a.final_states[PIVOT].get(HALTED_KEY)
    )
    pivot_uniform_in_a = all(
        _halted_or_agreeing(run_a.history, round_no) for round_no in obligation_rounds
    )
    pivot_rate_in_b = all(
        _pivot_advanced(run_b.history, round_no)
        for round_no in obligation_rounds
        if round_no < rounds
    )
    return Theorem2Outcome(
        patience=patience,
        pivot_faulty_history=run_a.history,
        pivot_faulty_report=report_a,
        peer_faulty_history=run_b.history,
        peer_faulty_report=report_b,
        views_identical=views_identical,
        pivot_halted=pivot_halted,
        pivot_uniform_in_a=pivot_uniform_in_a,
        pivot_rate_in_b=pivot_rate_in_b,
    )


def _halted_or_agreeing(history: ExecutionHistory, round_no: int) -> bool:
    """Assumption 2 at the pivot, one round: halted or matching the peer."""
    pivot = history.round(round_no).record(PIVOT)
    peer = history.round(round_no).record(PEER)
    if pivot.state_before is None or pivot.state_before.get(HALTED_KEY):
        return True
    return pivot.clock_before == peer.clock_before


def _pivot_advanced(history: ExecutionHistory, round_no: int) -> bool:
    """Assumption 1's rate at the pivot, between round_no and round_no+1."""
    now = history.round(round_no).record(PIVOT).clock_before
    nxt = history.round(round_no + 1).record(PIVOT).clock_before
    return now is not None and nxt == now + 1


def local_view(
    history: ExecutionHistory, pid: int
) -> List[Tuple[int, Tuple[Tuple[int, Any], ...]]]:
    """The pid's local view: per round, the (sender, payload) pairs delivered.

    Two executions are indistinguishable to ``pid`` exactly when these
    views (together with its initial state, which the scenarios fix)
    coincide.
    """
    view = []
    for round_no in range(history.first_round, history.last_round + 1):
        record = history.round(round_no).record(pid)
        deliveries = tuple(
            (message.sender, message.payload) for message in record.delivered
        )
        view.append((round_no, deliveries))
    return view
