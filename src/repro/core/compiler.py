"""The compiler Π → Π⁺ (paper, Figure 3, Theorem 4).

``compile_protocol`` superimposes the round agreement protocol
(Figure 1) onto a canonical fault-tolerant protocol Π (Figure 2),
producing the non-terminating, process- *and* systemic-failure-tolerant
Π⁺ that repeatedly solves Π's problem (Σ⁺).

Per-round behaviour of Π⁺ at process p (Figure 3, verbatim):

    Start of round:  send ((STATE: p, s_p), (ROUND: p, c_p)) to all
    End of round:
        S  := suspect ∪ {q | no message from q tagged with c_p arrived}
        M  := messages whose sender is not in S
        k  := normalize(c_p)          # c mod final_round + 1
        s' := function(p, s, M, k)    # Π's transition, "controlled"
        suspect' := S
        R  := all round tags received (unfiltered)
        c' := max(R) + 1              # the Figure 1 merge
        if normalize(c') = 1:         # new iteration starts
            s' := s_init; suspect' := ∅

Why each piece exists (paper §2.4):

- The **round tag + max-merge** is round agreement: once the coterie is
  stable, all correct processes run the same protocol-relative round
  ``k`` within one round of grace (Theorem 3).
- The **suspect set** insulates Π from "out-of-date" messages: a
  process whose tag disagrees with p's current round is suspected and
  its state message hidden from Π's transition — otherwise a stale
  coterie member would falsify Σ from inside.  Suspicion resets each
  iteration, so the *corrupted-suspect* systemic failure (a correct
  process pre-suspected at start) costs at most one extra iteration.
- The **iteration reset** re-establishes Π's initial state so the next
  repetition begins anew.

Theorem 4: if Π ft-solves Σ, then Π⁺ ftss-solves Σ⁺ with stabilization
time ``final_round``.  (The paper notes corrupted suspect sets can add
up to another ``final_round``; the THM4 bench measures the actual
distribution and EXPERIMENTS.md records it.)

For the ABL-SUSPECT ablation, ``use_suspects=False`` disables the
filter while keeping everything else — the benches show stale-round
messages then falsify Σ⁺ exactly as §2.4 warns.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.canonical import CanonicalProtocol, StateMessage
from repro.histories.history import CLOCK_KEY, Message
from repro.sync.protocol import SyncProtocol

__all__ = ["CompiledProtocol", "compile_protocol", "normalize"]

INNER_KEY = "inner"
SUSPECT_KEY = "suspect"


def normalize(clock: int, final_round: int) -> int:
    """Figure 3's ``normalize``: map a clock into ``1 .. final_round``."""
    return clock % final_round + 1


def compile_protocol(
    canonical: CanonicalProtocol, use_suspects: bool = True
) -> "CompiledProtocol":
    """Compile Π into Π⁺ (the paper's automatic transformation)."""
    return CompiledProtocol(canonical, use_suspects=use_suspects)


class CompiledProtocol(SyncProtocol):
    """Π⁺: the superimposition of round agreement onto Π.

    State layout::

        {
          "clock":   c_p       (round variable, unbounded int),
          "inner":   s_p       (Π's state),
          "suspect": frozenset (processes whose messages Π must ignore),
          "n":       system size,
          "last_decision":    decision of the last completed iteration,
          "decided_at_clock": clock value at which it completed,
        }

    ``last_decision``/``decided_at_clock`` are *history variables*: they
    are written, never read, by the protocol, and exist so analyses and
    Σ⁺ checks can observe per-iteration decisions after the reset wipes
    Π's state.  Like all state they are subject to corruption, which is
    why Σ⁺ checks only trust them inside stable windows.

    A clean start has ``clock = 0`` so the first protocol-relative round
    is ``normalize(0) = 1``; iteration boundaries fall on clocks that
    are multiples of ``final_round``.
    """

    def __init__(self, canonical: CanonicalProtocol, use_suspects: bool = True):
        self.canonical = canonical
        self.use_suspects = use_suspects
        self.final_round = canonical.final_round
        suffix = "" if use_suspects else "-nosuspect"
        self.name = f"compiled:{canonical.name}{suffix}"

    # -- protocol interface ------------------------------------------------

    def initial_state(self, pid: int, n: int) -> Dict[str, Any]:
        return {
            CLOCK_KEY: 0,
            INNER_KEY: self.canonical.initial_inner_state(pid, n),
            SUSPECT_KEY: frozenset(),
            "n": n,
            "last_decision": None,
            "decided_at_clock": None,
        }

    def send(self, pid: int, state: Mapping[str, Any]) -> Any:
        # ((STATE: p, s_p), (ROUND: p, c_p))
        return ((pid, dict(state[INNER_KEY])), state[CLOCK_KEY])

    def update(
        self, pid: int, state: Mapping[str, Any], delivered: Sequence[Message]
    ) -> Dict[str, Any]:
        n = state["n"]
        clock = state[CLOCK_KEY]

        # Partition the deliveries: who spoke at my round, and all tags.
        tags_seen: List[int] = []
        at_my_round: Dict[int, StateMessage] = {}
        for message in delivered:
            (sender, inner_payload), tag = message.payload
            tags_seen.append(tag)
            if tag == clock:
                at_my_round[sender] = (sender, inner_payload)

        # S := suspect ∪ {q | no message from q tagged c_p this round}
        missing = frozenset(q for q in range(n) if q not in at_my_round)
        suspects = frozenset(state[SUSPECT_KEY]) | missing

        # M := messages from unsuspected senders (suspect filter is the
        # §2.4 insulation; disabled only for the ABL-SUSPECT ablation).
        if self.use_suspects:
            inner_messages = [
                at_my_round[q] for q in sorted(at_my_round) if q not in suspects
            ]
        else:
            inner_messages = [at_my_round[q] for q in sorted(at_my_round)]

        k = normalize(clock, self.final_round)
        inner = self.canonical.transition(
            pid, state[INNER_KEY], inner_messages, k, n
        )

        last_decision = state.get("last_decision")
        decided_at = state.get("decided_at_clock")
        if k == self.final_round:
            decision = self.canonical.decision_of(inner)
            if decision is not None:
                last_decision = decision
                decided_at = clock

        # c' := max(R) + 1 over *all* tags (round agreement is never
        # filtered — a suspected process's tag still drags the merge).
        if not tags_seen:
            tags_seen = [clock]  # unreachable: self-delivery is guaranteed
        new_clock = max(tags_seen) + 1

        if normalize(new_clock, self.final_round) == 1:
            inner = self.canonical.initial_inner_state(pid, n)
            suspects = frozenset()

        return {
            CLOCK_KEY: new_clock,
            INNER_KEY: inner,
            SUSPECT_KEY: suspects,
            "n": n,
            "last_decision": last_decision,
            "decided_at_clock": decided_at,
        }

    # -- corruption support --------------------------------------------------

    def arbitrary_state(self, pid: int, n: int, rng: random.Random) -> Dict[str, Any]:
        """Arbitrary Π⁺ state: clock, Π-state, and suspect set all scrambled.

        Pre-populated suspect sets are the systemic failure the paper
        singles out as costing up to an extra iteration of
        stabilization.
        """
        suspect_pool = [q for q in range(n) if rng.random() < 0.3]
        return {
            CLOCK_KEY: rng.randrange(0, 8 * self.final_round),
            INNER_KEY: self.canonical.arbitrary_inner_state(pid, n, rng),
            SUSPECT_KEY: frozenset(suspect_pool),
            "n": n,
            "last_decision": None,
            "decided_at_clock": None,
        }

    # -- analysis helpers ------------------------------------------------------

    def decision_of(self, state: Mapping[str, Any]) -> Optional[Any]:
        """The last completed iteration's decision recorded in ``state``."""
        return state.get("last_decision")

    def iteration_of_clock(self, clock: int) -> int:
        """Which iteration (0-based) a clock value belongs to."""
        return clock // self.final_round
