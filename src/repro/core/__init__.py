"""The paper's primary contribution.

- :mod:`repro.core.problems` — problems as predicates on (history,
  faulty set); Assumption 1 (round agreement + rate), Assumption 2
  (uniformity), consensus/broadcast specifications, and the repeated
  problem Σ⁺.
- :mod:`repro.core.solvability` — executable versions of Definitions
  2.1, 2.2, 2.4 and Tentative Definition 1 (``ft-solves``,
  ``ss-solves``, ``ftss-solves``, ``tentatively-solves``).
- :mod:`repro.core.rounds` — the round agreement protocol (Figure 1)
  plus deliberately broken merge variants for ablation.
- :mod:`repro.core.canonical` — the canonical fault-tolerant
  full-information protocol Π (Figure 2) and its standalone runner.
- :mod:`repro.core.compiler` — the compiler Π → Π⁺ (Figure 3).
- :mod:`repro.core.impossibility` — executable renderings of the
  Theorem 1 and Theorem 2 scenario constructions.
"""

from repro.core.bounded import (
    BoundedClockAgreementProblem,
    BoundedRoundAgreement,
    bounded_refutation_sweep,
)
from repro.core.canonical import CanonicalProtocol, CanonicalRunner, run_ft
from repro.core.compiler import CompiledProtocol, compile_protocol
from repro.core.problems import (
    CheckReport,
    ClockAgreementProblem,
    ConsensusProblem,
    Problem,
    RepeatedConsensusProblem,
    UniformityCondition,
    Violation,
)
from repro.core.rounds import (
    FreeRunningRoundProtocol,
    MinMergeRoundProtocol,
    RoundAgreementProtocol,
)
from repro.core.solvability import (
    ft_check,
    ftss_check,
    ss_check,
    tentative_check,
)

__all__ = [
    "BoundedClockAgreementProblem",
    "BoundedRoundAgreement",
    "CanonicalProtocol",
    "CanonicalRunner",
    "CheckReport",
    "ClockAgreementProblem",
    "CompiledProtocol",
    "ConsensusProblem",
    "FreeRunningRoundProtocol",
    "MinMergeRoundProtocol",
    "Problem",
    "RepeatedConsensusProblem",
    "RoundAgreementProtocol",
    "UniformityCondition",
    "Violation",
    "bounded_refutation_sweep",
    "compile_protocol",
    "ft_check",
    "ftss_check",
    "run_ft",
    "ss_check",
    "tentative_check",
]
