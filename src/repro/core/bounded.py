"""Bounded round counters: the impossibility the paper defers.

Figure 3's third compilability requirement is that "the current round
number is counted by an unbounded variable"; the paper defers the
matching impossibility ("analogous to Theorem 2") to the full version.
This module makes the hazard executable:

:class:`BoundedRoundAgreement` is Figure 1 with the round variable
kept modulo ``M``.  The max-merge rule is then ill-founded — "max" of
points on a cycle depends on where you cut it — and we resolve it the
way bounded-sequence protocols classically do, with a windowed
comparison: ``b`` is *ahead of* ``a`` iff ``(b - a) mod M`` lies in
``(0, M/2)``.  That rule is sound exactly while all live clocks fit in
a half-ring window; a systemic failure can place them antipodally, and
then ahead-of is cyclic (a < b < c < a), merging is order-dependent,
and agreement can fail to re-establish while rate keeps holding — the
executable content of the bounded-counter impossibility.

:func:`antipodal_scenario` constructs such a configuration and
:func:`bounded_refutation_sweep` searches corruptions for refutations
of a given stabilization time, which the THM-BOUNDED bench sweeps
against the modulus.  For moduli that are large relative to both the
corruption spread and the run length, the bounded protocol behaves
exactly like Figure 1 (the window never wraps) — also measured, since
it is why practical systems get away with 64-bit counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.problems import ClockAgreementProblem, Problem
from repro.core.solvability import ftss_check
from repro.histories.history import CLOCK_KEY, ExecutionHistory, Message
from repro.sync.corruption import ClockSkewCorruption
from repro.sync.engine import run_sync
from repro.sync.protocol import SyncProtocol
from repro.util.rng import make_rng
from repro.util.validation import require, require_positive

__all__ = [
    "BoundedRoundAgreement",
    "BoundedClockAgreementProblem",
    "antipodal_scenario",
    "bounded_refutation_sweep",
    "BoundedSweepOutcome",
]


def ahead_of(b: int, a: int, modulus: int) -> bool:
    """Windowed cyclic comparison: is ``b`` ahead of ``a`` on the ring?"""
    return 0 < (b - a) % modulus < modulus / 2


class BoundedRoundAgreement(SyncProtocol):
    """Figure 1 with a mod-``M`` round variable and windowed merge.

    The update adopts the most-ahead clock visible this round (by the
    half-ring rule, starting from the process's own clock) and then
    increments mod ``M``.  Coincides with Figure 1 whenever all clocks
    ever alive fit in a half-ring window.
    """

    def __init__(self, modulus: int):
        require_positive(modulus, "modulus")
        require(modulus >= 4, f"modulus must be at least 4, got {modulus}")
        self.modulus = modulus
        self.name = f"bounded-round-agreement(M={modulus})"

    def initial_state(self, pid: int, n: int) -> Dict[str, Any]:
        return {CLOCK_KEY: 1}

    def send(self, pid: int, state: Mapping[str, Any]) -> Any:
        return state[CLOCK_KEY]

    def update(
        self, pid: int, state: Mapping[str, Any], delivered: Sequence[Message]
    ) -> Dict[str, Any]:
        best = state[CLOCK_KEY] % self.modulus
        for message in delivered:
            candidate = message.payload % self.modulus
            if ahead_of(candidate, best, self.modulus):
                best = candidate
        return {CLOCK_KEY: (best + 1) % self.modulus}

    def arbitrary_state(self, pid: int, n: int, rng: random.Random) -> Dict[str, Any]:
        return {CLOCK_KEY: rng.randrange(0, self.modulus)}


class BoundedClockAgreementProblem(Problem):
    """Assumption 1 with mod-``M`` rate: agreement plus ``+1 (mod M)``."""

    def __init__(self, modulus: int):
        self.modulus = modulus
        self.name = f"clock-agreement-mod-{modulus}"

    def check(self, history: ExecutionHistory, faulty):
        from repro.core.problems import CheckReport, Violation

        violations: List[Violation] = []
        for round_no in range(history.first_round, history.last_round + 1):
            clocks = {
                pid: clock
                for pid, clock in history.clocks(round_no).items()
                if pid not in faulty and clock is not None
            }
            if len(set(clocks.values())) > 1:
                violations.append(
                    Violation(round_no, "agreement", f"clocks differ: {clocks}")
                )
            if round_no < history.last_round:
                for pid, clock in clocks.items():
                    nxt = history.clock(pid, round_no + 1)
                    if nxt is not None and nxt != (clock + 1) % self.modulus:
                        violations.append(
                            Violation(
                                round_no,
                                "rate",
                                f"process {pid}: {clock} -> {nxt} "
                                f"(must be +1 mod {self.modulus})",
                            )
                        )
        return CheckReport.from_violations(self.name, violations)


def antipodal_scenario(modulus: int, n: int = 3) -> Dict[int, int]:
    """Clocks spread evenly around the ring: the cyclic ahead-of trap.

    With ``n`` clocks at mutual distance ``M/n`` each sees the next as
    ahead (for n >= 3 and M/n < M/2), so the "most ahead" relation is
    cyclic and different processes resolve the merge differently.
    """
    require(n >= 2, "need at least 2 processes")
    return {pid: (pid * modulus) // n % modulus for pid in range(n)}


@dataclass
class BoundedSweepOutcome:
    """Result of searching corruptions for a refutation."""

    modulus: int
    stabilization_time: int
    trials: int
    refutations: int
    first_refuting_clocks: Optional[Dict[int, int]]

    @property
    def refuted(self) -> bool:
        return self.refutations > 0


def bounded_refutation_sweep(
    modulus: int,
    stabilization_time: int,
    n: int = 3,
    rounds: int = 24,
    trials: int = 40,
    seed: int = 0,
    include_antipodal: bool = True,
    corruption_window: Optional[int] = None,
) -> BoundedSweepOutcome:
    """Search corrupted starts for ftss violations of the bounded protocol.

    Tries the constructed antipodal configuration first, then seeded
    random ring configurations.  A refutation is a failure-free run
    (so every window obligation is live) whose ftss check fails at the
    given stabilization time.

    ``corruption_window`` restricts corrupted clocks to ``[0, W)``: the
    regime in which real systems get away with bounded (e.g. 64-bit)
    counters.  While ``W + rounds`` stays below ``M/2`` the half-ring
    comparison never wraps and the protocol coincides with Figure 1 —
    no refutations.  With full-ring corruption (``W = M``, the
    theorem's regime) every modulus is refutable: arbitrary memory
    corruption can always place clocks antipodally.
    """
    protocol = BoundedRoundAgreement(modulus)
    sigma = BoundedClockAgreementProblem(modulus)
    rng = make_rng(seed, f"bounded-sweep-{modulus}-{corruption_window}")
    window = modulus if corruption_window is None else corruption_window
    require(0 < window <= modulus, f"corruption window {window} not in (0, {modulus}]")

    configurations: List[Dict[int, int]] = []
    if include_antipodal and window == modulus:
        configurations.append(antipodal_scenario(modulus, n))
    for _ in range(trials - len(configurations)):
        configurations.append(
            {pid: rng.randrange(0, window) for pid in range(n)}
        )

    refutations = 0
    first_refuting = None
    for clocks in configurations:
        res = run_sync(
            protocol,
            n=n,
            rounds=rounds,
            corruption=ClockSkewCorruption(clocks),
        )
        if not ftss_check(res.history, sigma, stabilization_time).holds:
            refutations += 1
            if first_refuting is None:
                first_refuting = dict(clocks)
    return BoundedSweepOutcome(
        modulus=modulus,
        stabilization_time=stabilization_time,
        trials=len(configurations),
        refutations=refutations,
        first_refuting_clocks=first_refuting,
    )
