"""THM1: Tentative Definition 1 defeated at every candidate time."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.core.impossibility import theorem1_scenario
from repro.experiments.base import Expectations, ExperimentResult


def run(fast: bool = False) -> ExperimentResult:
    candidates = [1, 4, 16] if fast else [1, 2, 4, 8, 16, 32, 64]
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="THM1",
        title="Tentative Definition 1 vs Definition 2.4, reveal-time sweep",
        claim="for every finite r some history violates the tentative "
        "definition (Thm 1); the same history satisfies ftss@1",
        headers=[
            "candidate r",
            "merge horn violates",
            "free-run horn violates",
            "ftss@1 survives",
        ],
    )
    for candidate in candidates:
        out = theorem1_scenario(candidate)
        report.add_row(
            candidate,
            not out.merge_tentative.holds,
            not out.twin_tentative.holds,
            out.ftss_survives,
        )
        expect.check(out.tentative_defeated, f"r={candidate}: a horn survived")
        expect.check(out.ftss_survives, f"r={candidate}: ftss@1 failed")
    return ExperimentResult(report=report, failures=expect.failures)
