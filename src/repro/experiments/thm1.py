"""THM1: Tentative Definition 1 defeated at every candidate time."""

from __future__ import annotations

from typing import Optional

from repro.analysis.report import ExperimentReport
from repro.core.impossibility import theorem1_scenario
from repro.experiments.base import Expectations, ExperimentResult, run_sweep


def _measure(candidate: int):
    out = theorem1_scenario(candidate)
    return (
        not out.merge_tentative.holds,
        not out.twin_tentative.holds,
        out.ftss_survives,
        out.tentative_defeated,
    )


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    candidates = [1, 4, 16] if fast else [1, 2, 4, 8, 16, 32, 64]
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="THM1",
        title="Tentative Definition 1 vs Definition 2.4, reveal-time sweep",
        claim="for every finite r some history violates the tentative "
        "definition (Thm 1); the same history satisfies ftss@1",
        headers=[
            "candidate r",
            "merge horn violates",
            "free-run horn violates",
            "ftss@1 survives",
        ],
    )
    outcomes = run_sweep(_measure, candidates, jobs, cache="THM1")
    for candidate, (merge_violates, twin_violates, survives, defeated) in zip(
        candidates, outcomes
    ):
        report.add_row(candidate, merge_violates, twin_violates, survives)
        expect.check(defeated, f"r={candidate}: a horn survived")
        expect.check(survives, f"r={candidate}: ftss@1 failed")
    return ExperimentResult(report=report, failures=expect.failures)
