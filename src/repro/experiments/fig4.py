"""FIG4: the ◇W→◇S transformation (Figure 4), clean vs corrupted."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.asyncnet.oracle import WeakDetectorOracle
from repro.asyncnet.scheduler import AsyncScheduler
from repro.detectors.properties import eventual_weak_accuracy, strong_completeness
from repro.detectors.strong import StrongDetector
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.sync.corruption import RandomCorruption
from repro.util.rng import sweep_seed

GST = 30.0
MAX_TIME = 250.0


def one_run(n: int, seed: int, corrupt: bool):
    crashes = {n - 1: 10.0, n - 2: 20.0}
    oracle = WeakDetectorOracle(n, crashes, gst=GST, seed=seed)
    corruption = None
    if corrupt:
        corruption = RandomCorruption(
            seed=sweep_seed("FIG4", f"n={n}:corruption", seed)
        )
    sched = AsyncScheduler(
        StrongDetector(),
        n,
        seed=seed,
        gst=GST,
        crash_times=crashes,
        oracle=oracle,
        corruption=corruption,
        sample_interval=2.0,
    )
    return sched.run(max_time=MAX_TIME)


def _measure(task: Tuple[int, bool, int]):
    n, corrupt, seed = task
    trace = one_run(n, seed, corrupt)
    sc = strong_completeness(trace)
    ewa = eventual_weak_accuracy(trace)
    return (
        sc.holds,
        ewa.holds,
        sc.converged_at if sc.holds else None,
        ewa.converged_at if ewa.holds else None,
    )


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    sizes = [4, 6] if fast else [4, 6, 8, 12]
    seeds = range(3 if fast else 6)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="FIG4",
        title=f"◇W→◇S (Figure 4), 2 crashes, GST={GST}",
        claim="◇S properties hold with or without initialization (Thm 5); "
        "convergence governed by delays, not corruption magnitude",
        headers=["n", "start", "SC holds", "EWA holds", "max SC conv.", "max EWA conv."],
    )
    tasks = [
        (n, corrupt, seed)
        for n in sizes
        for corrupt in (False, True)
        for seed in seeds
    ]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="FIG4")))
    for n in sizes:
        for corrupt, label in ((False, "clean"), (True, "corrupted")):
            sc_ok = ewa_ok = 0
            sc_times, ewa_times = [], []
            for seed in seeds:
                sc_holds, ewa_holds, sc_at, ewa_at = outcomes[(n, corrupt, seed)]
                sc_ok += sc_holds
                ewa_ok += ewa_holds
                if sc_at is not None:
                    sc_times.append(sc_at)
                if ewa_at is not None:
                    ewa_times.append(ewa_at)
            report.add_row(
                n,
                label,
                f"{sc_ok}/{len(seeds)}",
                f"{ewa_ok}/{len(seeds)}",
                f"{max(sc_times):.0f}" if sc_times else "-",
                f"{max(ewa_times):.0f}" if ewa_times else "-",
            )
            expect.check(sc_ok == len(seeds), f"n={n} {label}: completeness failed")
            expect.check(ewa_ok == len(seeds), f"n={n} {label}: accuracy failed")
    return ExperimentResult(report=report, failures=expect.failures)
