"""EXT-EARLY: early-deciding FloodMin latency vs actual crashes."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.core.canonical import run_ft
from repro.core.problems import ConsensusProblem
from repro.core.solvability import ft_check
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.protocols.earlydeciding import EarlyDecidingFloodMin
from repro.sync.adversary import RoundFaultPlan, ScriptedAdversary
from repro.util.rng import make_rng, sweep_seed

SIGMA = ConsensusProblem(
    decision_of=lambda s: s["inner"].get("decision"),
    proposal_of=lambda s: s["inner"].get("proposal"),
)
N, F = 8, 5


def staggered_crash_adversary(f_actual: int, seed: int) -> ScriptedAdversary:
    """f' victims crashing in consecutive rounds (the worst stagger)."""
    rng = make_rng(sweep_seed("EXT-EARLY", f"f'={f_actual}", seed), "ext-early")
    victims = rng.sample(range(N), f_actual)
    script = {}
    for index, victim in enumerate(victims):
        survivors = frozenset(q for q in range(N) if q != victim and rng.random() < 0.5)
        script[index + 1] = RoundFaultPlan(crashes={victim: survivors})
    return ScriptedAdversary(f=f_actual, script=script)


def _measure(task: Tuple[int, int]):
    f_actual, seed = task
    ed = EarlyDecidingFloodMin(f=F, proposals=[5, 2, 9, 1, 7, 4, 8, 3])
    res = run_ft(ed, n=N, adversary=staggered_crash_adversary(f_actual, seed))
    spec_holds = ft_check(res.history, SIGMA).holds
    rounds = [
        state["inner"]["decided_at_k"]
        for pid, state in res.final_states.items()
        if state is not None and pid not in res.faulty
    ]
    return spec_holds, max(rounds)


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(3 if fast else 8)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="EXT-EARLY",
        title=f"Early-deciding FloodMin latency, n={N}, f={F} "
        f"(worst-case bound {F + 1} rounds)",
        claim="decision by ~f'+2 rounds when only f' crashes occur; early "
        "deciding (not stopping) keeps the protocol compilable",
        headers=["actual crashes f'", "worst decision round", "f'+2", "bound f+1"],
    )
    tasks = [(f_actual, seed) for f_actual in range(0, F + 1) for seed in seeds]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="EXT-EARLY")))
    for f_actual in range(0, F + 1):
        worst = 0
        for seed in seeds:
            spec_holds, decision_round = outcomes[(f_actual, seed)]
            expect.check(
                spec_holds, f"f'={f_actual} seed={seed}: consensus spec failed"
            )
            worst = max(worst, decision_round)
        report.add_row(f_actual, worst, f_actual + 2, F + 1)
        expect.check(
            worst <= min(f_actual + 2, F + 1),
            f"f'={f_actual}: latency {worst} exceeds min(f'+2, f+1)",
        )
    return ExperimentResult(report=report, failures=expect.failures)
