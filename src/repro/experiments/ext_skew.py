"""EXT-SKEW: round agreement without perfect synchrony."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.core.compiler import compile_protocol
from repro.core.problems import (
    BoundedSkewAgreementProblem,
    ClockAgreementProblem,
    RepeatedConsensusProblem,
)
from repro.core.rounds import RoundAgreementProtocol
from repro.core.solvability import ftss_check
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.protocols.floodmin import FloodMinConsensus
from repro.sync.corruption import ClockSkewCorruption
from repro.sync.delays import RandomDelay, TargetedLag
from repro.sync.engine import run_sync
from repro.util.rng import sweep_seed
from repro.workloads.scenarios import clock_skew_pattern

N, ROUNDS = 5, 30

P_LATES = (0.1, 0.4, 0.8)
COMPILED_P_LATES = (0.1, 0.3)


def run_with(delay_model, point: str, seed: int):
    skews = clock_skew_pattern(
        N, seed=sweep_seed("EXT-SKEW", f"{point}:skews", seed)
    )
    return run_sync(
        RoundAgreementProtocol(),
        n=N,
        rounds=ROUNDS,
        corruption=ClockSkewCorruption(skews),
        delay_model=delay_model,
    )


def compiled_under_lateness(p_late: float, seed: int) -> bool:
    """Does the unmodified compiler's Σ⁺ survive random lateness?

    The suspect mechanism converts a late sender into a crash-like
    exclusion for the rest of the iteration — graceful as long as the
    exclusions stay within what Π tolerates, broken once suspicion
    storms exceed it.  This is the compiler's synchrony boundary.
    """
    pi = FloodMinConsensus(f=2, proposals=[3, 1, 4, 1, 5])
    plus = compile_protocol(pi)
    props = frozenset(pi.proposal_for(p) for p in range(N))
    sigma = RepeatedConsensusProblem(pi.final_round, valid_proposals=props)
    res = run_sync(
        plus,
        n=N,
        rounds=15 * pi.final_round,
        delay_model=RandomDelay(
            seed=sweep_seed("EXT-SKEW", f"compiled,p_late={p_late}:delay", seed),
            p_late=p_late,
        ),
    )
    return ftss_check(res.history, sigma, 2 * pi.final_round).holds


def _agreement_pair(history):
    exact = ftss_check(history, ClockAgreementProblem(), 2).holds
    skew1 = ftss_check(history, BoundedSkewAgreementProblem(1), 2).holds
    return exact, skew1


def _measure(task: Tuple[str, Optional[float], int]):
    kind, p_late, seed = task
    if kind == "random":
        point = f"p_late={p_late}"
        delay = RandomDelay(
            seed=sweep_seed("EXT-SKEW", f"{point}:delay", seed), p_late=p_late
        )
        return _agreement_pair(run_with(delay, point, seed).history)
    if kind == "targeted":
        lag_all_into_victim = TargetedLag([(q, 0) for q in range(1, N)])
        return _agreement_pair(run_with(lag_all_into_victim, "targeted", seed).history)
    return compiled_under_lateness(p_late, seed)


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(3 if fast else 8)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="EXT-SKEW",
        title=f"Round agreement without perfect synchrony, n={N}, "
        f"delivery within 2 rounds",
        claim="Figure 1 adapts to bounded asynchrony: agreement within "
        "the delay bound (skew 1); exact agreement only without a "
        "permanently lagged link",
        headers=["delay regime", "exact agreement", "skew-1 agreement"],
    )
    tasks = (
        [("random", p_late, seed) for p_late in P_LATES for seed in seeds]
        + [("targeted", None, seed) for seed in seeds]
        + [("compiled", p_late, seed) for p_late in COMPILED_P_LATES for seed in seeds]
    )
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="EXT-SKEW")))
    for p_late in P_LATES:
        exact = skew1 = 0
        for seed in seeds:
            exact_ok, skew1_ok = outcomes[("random", p_late, seed)]
            exact += exact_ok
            skew1 += skew1_ok
        report.add_row(
            f"random, p_late={p_late}",
            f"{exact}/{len(seeds)}",
            f"{skew1}/{len(seeds)}",
        )
        expect.check(skew1 == len(seeds), f"p_late={p_late}: skew-1 failed")

    exact = skew1 = 0
    for seed in seeds:
        exact_ok, skew1_ok = outcomes[("targeted", None, seed)]
        exact += exact_ok
        skew1 += skew1_ok
    report.add_row(
        "targeted: every link into process 0 lags",
        f"{exact}/{len(seeds)}",
        f"{skew1}/{len(seeds)}",
    )
    # Exact agreement fails except when the victim itself holds the
    # maximum clock (its outgoing links are unlagged).
    expect.check(exact < max(1, len(seeds) // 2), "targeted lag barely hurt exact agreement")
    expect.check(skew1 == len(seeds), "targeted lag broke even skew-1 agreement")

    # The compiler's synchrony boundary: sticky suspicion absorbs light
    # lateness as crash-like exclusion; heavy lateness exceeds Π's
    # budget and Σ⁺ breaks — the compiler, unlike round agreement, does
    # NOT "readily adapt" without further changes.
    light = sum(outcomes[("compiled", 0.1, seed)] for seed in seeds)
    heavy = sum(outcomes[("compiled", 0.3, seed)] for seed in seeds)
    report.add_row("compiled FloodMin, p_late=0.1", f"{light}/{len(seeds)} (Σ⁺)", "-")
    report.add_row("compiled FloodMin, p_late=0.3", f"{heavy}/{len(seeds)} (Σ⁺)", "-")
    expect.check(light == len(seeds), "compiler failed under light lateness")
    expect.check(heavy < len(seeds), "compiler unexpectedly survived heavy lateness")
    return ExperimentResult(report=report, failures=expect.failures)
