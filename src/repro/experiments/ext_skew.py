"""EXT-SKEW: round agreement without perfect synchrony."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.core.compiler import compile_protocol
from repro.core.problems import (
    BoundedSkewAgreementProblem,
    ClockAgreementProblem,
    RepeatedConsensusProblem,
)
from repro.core.rounds import RoundAgreementProtocol
from repro.core.solvability import ftss_check
from repro.experiments.base import Expectations, ExperimentResult
from repro.protocols.floodmin import FloodMinConsensus
from repro.sync.corruption import ClockSkewCorruption
from repro.sync.delays import RandomDelay, TargetedLag
from repro.sync.engine import run_sync
from repro.workloads.scenarios import clock_skew_pattern

N, ROUNDS = 5, 30


def run_with(delay_model, seed: int):
    return run_sync(
        RoundAgreementProtocol(),
        n=N,
        rounds=ROUNDS,
        corruption=ClockSkewCorruption(clock_skew_pattern(N, seed=seed)),
        delay_model=delay_model,
    )


def compiled_under_lateness(p_late: float, seed: int) -> bool:
    """Does the unmodified compiler's Σ⁺ survive random lateness?

    The suspect mechanism converts a late sender into a crash-like
    exclusion for the rest of the iteration — graceful as long as the
    exclusions stay within what Π tolerates, broken once suspicion
    storms exceed it.  This is the compiler's synchrony boundary.
    """
    pi = FloodMinConsensus(f=2, proposals=[3, 1, 4, 1, 5])
    plus = compile_protocol(pi)
    props = frozenset(pi.proposal_for(p) for p in range(N))
    sigma = RepeatedConsensusProblem(pi.final_round, valid_proposals=props)
    res = run_sync(
        plus,
        n=N,
        rounds=15 * pi.final_round,
        delay_model=RandomDelay(seed=seed, p_late=p_late),
    )
    return ftss_check(res.history, sigma, 2 * pi.final_round).holds


def run(fast: bool = False) -> ExperimentResult:
    seeds = range(3 if fast else 8)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="EXT-SKEW",
        title=f"Round agreement without perfect synchrony, n={N}, "
        f"delivery within 2 rounds",
        claim="Figure 1 adapts to bounded asynchrony: agreement within "
        "the delay bound (skew 1); exact agreement only without a "
        "permanently lagged link",
        headers=["delay regime", "exact agreement", "skew-1 agreement"],
    )
    for p_late in (0.1, 0.4, 0.8):
        exact = skew1 = 0
        for seed in seeds:
            history = run_with(RandomDelay(seed=seed, p_late=p_late), seed).history
            exact += ftss_check(history, ClockAgreementProblem(), 2).holds
            skew1 += ftss_check(history, BoundedSkewAgreementProblem(1), 2).holds
        report.add_row(
            f"random, p_late={p_late}",
            f"{exact}/{len(seeds)}",
            f"{skew1}/{len(seeds)}",
        )
        expect.check(skew1 == len(seeds), f"p_late={p_late}: skew-1 failed")

    lag_all_into_victim = TargetedLag([(q, 0) for q in range(1, N)])
    exact = skew1 = 0
    for seed in seeds:
        history = run_with(lag_all_into_victim, seed).history
        exact += ftss_check(history, ClockAgreementProblem(), 2).holds
        skew1 += ftss_check(history, BoundedSkewAgreementProblem(1), 2).holds
    report.add_row(
        "targeted: every link into process 0 lags",
        f"{exact}/{len(seeds)}",
        f"{skew1}/{len(seeds)}",
    )
    # Exact agreement fails except when the victim itself holds the
    # maximum clock (its outgoing links are unlagged).
    expect.check(exact < max(1, len(seeds) // 2), "targeted lag barely hurt exact agreement")
    expect.check(skew1 == len(seeds), "targeted lag broke even skew-1 agreement")

    # The compiler's synchrony boundary: sticky suspicion absorbs light
    # lateness as crash-like exclusion; heavy lateness exceeds Π's
    # budget and Σ⁺ breaks — the compiler, unlike round agreement, does
    # NOT "readily adapt" without further changes.
    light = sum(compiled_under_lateness(0.1, seed) for seed in seeds)
    heavy = sum(compiled_under_lateness(0.3, seed) for seed in seeds)
    report.add_row("compiled FloodMin, p_late=0.1", f"{light}/{len(seeds)} (Σ⁺)", "-")
    report.add_row("compiled FloodMin, p_late=0.3", f"{heavy}/{len(seeds)} (Σ⁺)", "-")
    expect.check(light == len(seeds), "compiler failed under light lateness")
    expect.check(heavy < len(seeds), "compiler unexpectedly survived heavy lateness")
    return ExperimentResult(report=report, failures=expect.failures)
