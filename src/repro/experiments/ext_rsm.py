"""EXT-RSM: the replicated state machine, service-level guarantees."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.apps.rsm import ClientWorkload, ReplicatedStateMachine, rsm_verdict
from repro.asyncnet.oracle import WeakDetectorOracle
from repro.asyncnet.scheduler import AsyncScheduler
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.sync.corruption import RandomCorruption
from repro.util.rng import sweep_seed

N = 5
CUTOFF = 110.0


def workload() -> ClientWorkload:
    return ClientWorkload(
        {
            pid: [(5.0 + 18.0 * k + pid, f"cmd-{pid}-{k}") for k in range(5)]
            for pid in range(N)
        }
    )


def one_run(detector: str, corrupt: bool, seed: int, max_time: float):
    w = workload()
    crashes = {N - 1: 60.0}
    rsm = ReplicatedStateMachine(N, w, mode="ss", detector=detector)
    oracle = (
        WeakDetectorOracle(N, crashes, gst=15.0, seed=seed)
        if detector == "fig4"
        else None
    )
    corruption = None
    if corrupt:
        corruption = RandomCorruption(
            seed=sweep_seed("EXT-RSM", f"{detector}:corruption", seed)
        )
    sched = AsyncScheduler(
        rsm,
        N,
        seed=seed,
        gst=15.0,
        crash_times=crashes,
        oracle=oracle,
        corruption=corruption,
        sample_interval=5.0,
    )
    trace = sched.run(max_time=max_time)
    return rsm_verdict(trace, w, liveness_cutoff=CUTOFF)


def _measure(task: Tuple[str, bool, int, float]):
    detector, corrupt, seed, max_time = task
    verdict = one_run(detector, corrupt, seed, max_time)
    return verdict.holds, verdict.applied_count


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(2 if fast else 4)
    max_time = 250.0 if fast else 350.0
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="EXT-RSM",
        title=f"Replicated state machine over SS consensus, n={N}",
        claim="identical applied sequences at all correct replicas; no "
        "correct-client command lost — from any initial state ([Sch90] "
        "over Section 3)",
        headers=["detector", "start", "crash", "holds", "median applied"],
    )
    tasks = [
        (detector, corrupt, seed, max_time)
        for detector in ("fig4", "heartbeat")
        for corrupt in (False, True)
        for seed in seeds
    ]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="EXT-RSM")))
    for detector in ("fig4", "heartbeat"):
        for corrupt in (False, True):
            holds, applied = 0, []
            for seed in seeds:
                ok, applied_count = outcomes[(detector, corrupt, seed, max_time)]
                holds += ok
                applied.append(applied_count)
            label = "corrupted" if corrupt else "clean"
            report.add_row(
                detector,
                label,
                "1 crash",
                f"{holds}/{len(seeds)}",
                sorted(applied)[len(applied) // 2],
            )
            expect.check(
                holds == len(seeds), f"{detector}/{label}: RSM spec failed"
            )
    return ExperimentResult(report=report, failures=expect.failures)
