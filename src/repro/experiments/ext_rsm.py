"""EXT-RSM: the replicated state machine, service-level guarantees."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.apps.rsm import ClientWorkload, ReplicatedStateMachine, rsm_verdict
from repro.asyncnet.oracle import WeakDetectorOracle
from repro.asyncnet.scheduler import AsyncScheduler
from repro.experiments.base import Expectations, ExperimentResult
from repro.sync.corruption import RandomCorruption

N = 5
CUTOFF = 110.0


def workload() -> ClientWorkload:
    return ClientWorkload(
        {
            pid: [(5.0 + 18.0 * k + pid, f"cmd-{pid}-{k}") for k in range(5)]
            for pid in range(N)
        }
    )


def one_run(detector: str, corrupt: bool, seed: int, max_time: float):
    w = workload()
    crashes = {N - 1: 60.0}
    rsm = ReplicatedStateMachine(N, w, mode="ss", detector=detector)
    oracle = (
        WeakDetectorOracle(N, crashes, gst=15.0, seed=seed)
        if detector == "fig4"
        else None
    )
    sched = AsyncScheduler(
        rsm,
        N,
        seed=seed,
        gst=15.0,
        crash_times=crashes,
        oracle=oracle,
        corruption=RandomCorruption(seed=seed + 5) if corrupt else None,
        sample_interval=5.0,
    )
    trace = sched.run(max_time=max_time)
    return rsm_verdict(trace, w, liveness_cutoff=CUTOFF)


def run(fast: bool = False) -> ExperimentResult:
    seeds = range(2 if fast else 4)
    max_time = 250.0 if fast else 350.0
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="EXT-RSM",
        title=f"Replicated state machine over SS consensus, n={N}",
        claim="identical applied sequences at all correct replicas; no "
        "correct-client command lost — from any initial state ([Sch90] "
        "over Section 3)",
        headers=["detector", "start", "crash", "holds", "median applied"],
    )
    for detector in ("fig4", "heartbeat"):
        for corrupt in (False, True):
            holds, applied = 0, []
            for seed in seeds:
                verdict = one_run(detector, corrupt, seed, max_time)
                holds += verdict.holds
                applied.append(verdict.applied_count)
            label = "corrupted" if corrupt else "clean"
            report.add_row(
                detector,
                label,
                "1 crash",
                f"{holds}/{len(seeds)}",
                sorted(applied)[len(applied) // 2],
            )
            expect.check(
                holds == len(seeds), f"{detector}/{label}: RSM spec failed"
            )
    return ExperimentResult(report=report, failures=expect.failures)
