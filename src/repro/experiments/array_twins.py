"""ARRAY-TWINS: the batched twins beyond unison, end to end.

The array plane started as a unison accelerator; this experiment pins
down the three hard cases that used to fall back to the reference
engine, and runs each of them through ``run_sweep(backend="array")``
so the routing, the ``@array`` cache namespace, and the per-backend
executed counters are exercised on every kind:

- ``phase-queen`` — Berman–Garay PhaseQueen consensus under the
  :class:`~repro.core.canonical.CanonicalRunner`, with one crash fault
  per seed: the batched ballot/queen fold must reproduce agreement
  among the survivors (n > 4f).
- ``detector`` — the heartbeat-◇P + Figure 4-◇S
  :class:`~repro.detectors.stack.DetectorStack` under a crash plus
  arbitrary initial corruption: every survivor must converge on the
  crashed process's ``dead`` verdict (strong completeness) through the
  batched suspect-matrix twin.
- ``forged-unison`` — min-rule unison with a payload-forging Byzantine
  adversary: the dense forgery path keeps the lanes on the array
  engine (forged copies patched with the reference transition) instead
  of refusing the plan.

The integration test asserts the sharp end: a sweep over these points
executes with ``executed_array == len(points)`` and a zero fallback
counter — no kind silently drops to the reference engine.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.array import run_array
from repro.core.canonical import CanonicalRunner
from repro.detectors.stack import DetectorStack
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.kernel.faults import FaultPlan
from repro.kernel.topology import RingTopology, Topology
from repro.protocols.phaseking import PhaseQueenConsensus
from repro.protocols.unison import MinUnison
from repro.sync.adversary import ByzantineAdversary
from repro.sync.corruption import RandomCorruption
from repro.sync.engine import run_sync
from repro.util.rng import sweep_seed

KINDS = ("phase-queen", "detector", "forged-unison")

Task = Tuple[str, int, int]  # (kind, n, seed)

#: One crash fault per PhaseQueen lane; n > 4f keeps agreement intact.
PQ_F = 1
#: The detector stack's bounded-stabilization cap (small, so the crash
#: verdict lands well inside the run).
DETECTOR_TIMEOUT = 4


def _rounds(kind: str) -> int:
    if kind == "phase-queen":
        return 2 * (PQ_F + 1)
    return 12


def _protocol(kind: str, n: int):
    if kind == "phase-queen":
        proposals = [i % 2 for i in range(n)]
        return CanonicalRunner(PhaseQueenConsensus(f=PQ_F, n=n, proposals=proposals))
    if kind == "detector":
        return DetectorStack(initial_timeout=1, max_timeout=DETECTOR_TIMEOUT)
    if kind == "forged-unison":
        return MinUnison()
    raise ValueError(f"unknown twin kind {kind!r}")


def _topology(kind: str, n: int) -> Optional[Topology]:
    return RingTopology(n) if kind == "forged-unison" else None


def _forge(rng, payload):
    """The Byzantine lie: drag the clock down so min-rule swallows it."""
    return (payload if isinstance(payload, int) else 0) - rng.randrange(0, 3)


def _plan(kind: str, n: int, seed: int) -> FaultPlan:
    base = sweep_seed("ARRAY-TWINS", f"{kind}:n={n}", seed)
    victim = seed % n
    if kind == "phase-queen":
        return FaultPlan(crashes={victim: 1.0 + (seed % _rounds(kind))})
    if kind == "detector":
        return FaultPlan(
            crashes={victim: 2.0},
            initial_corruption=RandomCorruption(seed=base),
        )
    return FaultPlan(
        omissions=ByzantineAdversary(n, 1, _forge, rate=0.5, seed=base),
        initial_corruption=RandomCorruption(seed=base + 1),
    )


def _survivors(kind: str, n: int, seed: int) -> List[int]:
    plan = _plan(kind, n, seed)
    return [pid for pid in range(n) if pid not in plan.crashes]


def _outcome_from_states(kind, n, seed, final_states) -> Tuple[int, int]:
    """The per-kind measurement, shared by both engines' readouts."""
    live = _survivors(kind, n, seed)
    if kind == "phase-queen":
        decisions = [final_states[pid]["inner"]["decision"] for pid in live]
        decided = [d for d in decisions if d is not None]
        return len(set(decided)), len(decided)
    # detector: how many survivors hold the victim's ``dead`` verdict.
    victim = seed % n
    suspected_by = sum(
        1 for pid in live if victim in DetectorStack.suspects(final_states[pid])
    )
    return suspected_by, len(live)


def _measure(task: Task) -> Tuple[int, int]:
    """Reference fallback: one point on the plain engine."""
    kind, n, seed = task
    result = run_sync(
        _protocol(kind, n),
        n=n,
        rounds=_rounds(kind),
        fault_plan=_plan(kind, n, seed),
        topology=_topology(kind, n),
    )
    if kind == "forged-unison":
        last = 0
        for rh in result.history:
            clocks = {r.clock_before for r in rh.records if r.clock_before is not None}
            if len(clocks) > 1:
                last = rh.round_no
        return last, _rounds(kind)
    return _outcome_from_states(kind, n, seed, result.final_states)


def _measure_batch(tasks: List[Task]) -> List[Tuple[int, int]]:
    """Batched twin of :func:`_measure`: one run_array call per kind."""
    groups = {}
    for index, (kind, n, seed) in enumerate(tasks):
        groups.setdefault((kind, n), []).append((index, seed))
    outcomes: List[Optional[Tuple[int, int]]] = [None] * len(tasks)
    for (kind, n), members in groups.items():
        disagreement = kind == "forged-unison"
        result = run_array(
            _protocol(kind, n),
            n,
            _rounds(kind),
            fault_plans=[_plan(kind, n, seed) for _index, seed in members],
            topology=_topology(kind, n),
            measure_disagreement=disagreement,
        )
        for lane, (index, seed) in enumerate(members):
            if disagreement:
                outcomes[index] = (
                    result.last_disagreement[lane] or 0,
                    _rounds(kind),
                )
            else:
                outcomes[index] = _outcome_from_states(
                    kind, n, seed, result.final_states(lane)
                )
    return outcomes


def _estimate_cost(task: Task) -> float:
    _kind, n, _seed = task
    return float(n) * _rounds(task[0])


_measure.array_batch = _measure_batch
_measure.estimate_cost = _estimate_cost


def tasks_for(seeds) -> List[Task]:
    return [
        (kind, n, seed)
        for kind, n in (("phase-queen", 5), ("detector", 6), ("forged-unison", 8))
        for seed in seeds
    ]


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(2) if fast else range(4)
    tasks = tasks_for(seeds)

    expect = Expectations()
    report = ExperimentReport(
        experiment_id="ARRAY-TWINS",
        title="Batched twins: PhaseQueen, the detector stack, forged unison",
        claim=(
            "consensus, failure detection, and Byzantine-forged runs "
            "keep their reference-engine verdicts on the array plane"
        ),
        headers=["kind", "n", "seeds", "verdict"],
    )

    outcomes = dict(
        zip(
            tasks,
            run_sweep(_measure, tasks, jobs, cache="ARRAY-TWINS", backend="array"),
        )
    )
    for kind, n in (("phase-queen", 5), ("detector", 6), ("forged-unison", 8)):
        rows = [outcomes[(kind, n, seed)] for seed in seeds]
        if kind == "phase-queen":
            ok = all(distinct == 1 and decided == len(_survivors(kind, n, seed))
                     for (distinct, decided), seed in zip(rows, seeds))
            verdict = "all survivors agree"
            expect.check(ok, f"{kind}: survivors disagreed or failed to decide")
        elif kind == "detector":
            ok = all(suspected_by == live for suspected_by, live in rows)
            verdict = "crash verdict converges"
            expect.check(ok, f"{kind}: a survivor missed the crash verdict")
        else:
            ok = all(last > 0 for last, _rounds_run in rows)
            verdict = "forgeries register as disagreement"
            expect.check(ok, f"{kind}: forgeries never produced disagreement")
        report.add_row(kind, n, len(rows), verdict if ok else "FAILED")
    return ExperimentResult(report=report, failures=expect.failures)
