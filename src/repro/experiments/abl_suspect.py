"""ABL-SUSPECT: Figure 3's suspect filtering, leak-offset sweep."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.core.compiler import compile_protocol
from repro.core.problems import RepeatedConsensusProblem
from repro.core.solvability import ftss_check
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.protocols.floodmin import FloodMinConsensus
from repro.sync.engine import run_sync
from repro.workloads.scenarios import LateRevealAdversary

N, F = 6, 2  # final_round = 3


def one_run(use_suspects: bool, offset: int, iterations: int = 10):
    pi = FloodMinConsensus(f=F, proposals=[3, 0, 4, 2, 5, 6])
    plus = compile_protocol(pi, use_suspects=use_suspects)
    adversary = LateRevealAdversary(
        hider=1, victim=0, n=N, period=pi.final_round, offset=offset
    )
    res = run_sync(plus, n=N, rounds=iterations * pi.final_round, adversary=adversary)
    props = frozenset(pi.proposal_for(p) for p in range(N))
    sigma = RepeatedConsensusProblem(pi.final_round, valid_proposals=props)
    return ftss_check(res.history, sigma, pi.final_round)


def _measure(task: Tuple[int, int]):
    offset, iterations = task
    with_report = one_run(True, offset, iterations)
    without_report = one_run(False, offset, iterations)
    return with_report.holds, without_report.holds


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    pi = FloodMinConsensus(f=F, proposals=[3, 0, 4, 2, 5, 6])
    iterations = 6 if fast else 10
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="ABL-SUSPECT",
        title=f"Late-reveal leak offset sweep, n={N}, final_round={pi.final_round}",
        claim="without suspect filtering, stale senders falsify Σ from "
        "inside the coterie (§2.4); with it, every offset is safe",
        headers=["leak offset", "with suspects", "without suspects"],
    )
    tasks = [(offset, iterations) for offset in range(pi.final_round)]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="ABL-SUSPECT")))
    broken_without = 0
    for offset in range(pi.final_round):
        with_holds, without_holds = outcomes[(offset, iterations)]
        report.add_row(offset, with_holds, without_holds)
        expect.check(with_holds, f"offset {offset}: suspects did not protect")
        broken_without += not without_holds
    expect.check(broken_without >= 1, "no offset falsified the ablated compiler")
    return ExperimentResult(report=report, failures=expect.failures)
