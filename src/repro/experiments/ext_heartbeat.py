"""EXT-HEARTBEAT: consensus on the implementable ◇P, no oracle."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.asyncnet.scheduler import AsyncScheduler
from repro.detectors.consensus import CTConsensus, consensus_log_agreement
from repro.detectors.heartbeat import HeartbeatDetector
from repro.detectors.properties import strong_completeness
from repro.experiments.base import Expectations, ExperimentResult
from repro.sync.corruption import RandomCorruption

N = 5


def consensus_run(seed: int, corrupt: bool, max_time: float):
    proto = CTConsensus(N, mode="ss", detector="heartbeat")
    sched = AsyncScheduler(
        proto,
        N,
        seed=seed,
        gst=20.0,
        crash_times={N - 1: 30.0},
        corruption=RandomCorruption(seed=seed + 9) if corrupt else None,
        sample_interval=5.0,
    )
    return sched.run(max_time=max_time)


def detector_run(seed: int, max_timeout: float):
    detector = HeartbeatDetector(max_timeout=max_timeout)
    sched = AsyncScheduler(
        detector,
        N,
        seed=seed,
        gst=20.0,
        crash_times={N - 1: 30.0},
        corruption=RandomCorruption(seed=seed + 3),
        sample_interval=2.0,
    )
    return sched.run(max_time=400.0)


def run(fast: bool = False) -> ExperimentResult:
    seeds = range(2 if fast else 5)
    max_time = 180.0 if fast else 300.0
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="EXT-HEARTBEAT",
        title=f"Consensus on the implementable ◇P (no oracle), n={N}",
        claim="an adaptive-timeout heartbeat detector is ◇P ⊆ ◇S and "
        "self-stabilizing given the timeout cap; consensus runs on it",
        headers=["series", "parameter", "holds / converged", "detail"],
    )
    for corrupt in (False, True):
        ok, instances = 0, []
        for seed in seeds:
            verdict = consensus_log_agreement(consensus_run(seed, corrupt, max_time))
            ok += verdict.holds
            instances.append(verdict.instances_checked)
        label = "corrupted" if corrupt else "clean"
        report.add_row(
            "consensus",
            label,
            f"{ok}/{len(seeds)}",
            f"median instances {sorted(instances)[len(instances) // 2]}",
        )
        expect.check(ok == len(seeds), f"consensus/{label}: failed on some seed")

    caps = (15.0, 60.0) if fast else (15.0, 60.0, 240.0)
    for cap in caps:
        times = []
        for seed in seeds:
            verdict = strong_completeness(detector_run(seed, cap))
            expect.check(verdict.holds, f"cap={cap}: completeness never converged")
            if verdict.holds:
                times.append(verdict.converged_at)
        report.add_row(
            "detector (corrupted)",
            f"cap={cap:.0f}",
            f"{len(times)}/{len(seeds)}",
            f"max SC convergence {max(times):.0f}" if times else "-",
        )
    return ExperimentResult(report=report, failures=expect.failures)
