"""EXT-HEARTBEAT: consensus on the implementable ◇P, no oracle."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.asyncnet.scheduler import AsyncScheduler
from repro.detectors.consensus import CTConsensus, consensus_log_agreement
from repro.detectors.heartbeat import HeartbeatDetector
from repro.detectors.properties import strong_completeness
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.sync.corruption import RandomCorruption
from repro.util.rng import sweep_seed

N = 5


def consensus_run(seed: int, corrupt: bool, max_time: float):
    proto = CTConsensus(N, mode="ss", detector="heartbeat")
    corruption = None
    if corrupt:
        corruption = RandomCorruption(
            seed=sweep_seed("EXT-HEARTBEAT", "consensus:corruption", seed)
        )
    sched = AsyncScheduler(
        proto,
        N,
        seed=seed,
        gst=20.0,
        crash_times={N - 1: 30.0},
        corruption=corruption,
        sample_interval=5.0,
    )
    return sched.run(max_time=max_time)


def detector_run(seed: int, max_timeout: float):
    detector = HeartbeatDetector(max_timeout=max_timeout)
    sched = AsyncScheduler(
        detector,
        N,
        seed=seed,
        gst=20.0,
        crash_times={N - 1: 30.0},
        corruption=RandomCorruption(
            seed=sweep_seed("EXT-HEARTBEAT", f"detector:cap={max_timeout:.0f}", seed)
        ),
        sample_interval=2.0,
    )
    return sched.run(max_time=400.0)


def _measure_consensus(task: Tuple[bool, int, float]):
    corrupt, seed, max_time = task
    verdict = consensus_log_agreement(consensus_run(seed, corrupt, max_time))
    return verdict.holds, verdict.instances_checked


def _measure_detector(task: Tuple[float, int]):
    cap, seed = task
    verdict = strong_completeness(detector_run(seed, cap))
    return verdict.holds, verdict.converged_at if verdict.holds else None


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(2 if fast else 5)
    max_time = 180.0 if fast else 300.0
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="EXT-HEARTBEAT",
        title=f"Consensus on the implementable ◇P (no oracle), n={N}",
        claim="an adaptive-timeout heartbeat detector is ◇P ⊆ ◇S and "
        "self-stabilizing given the timeout cap; consensus runs on it",
        headers=["series", "parameter", "holds / converged", "detail"],
    )
    consensus_tasks = [
        (corrupt, seed, max_time) for corrupt in (False, True) for seed in seeds
    ]
    consensus_outcomes = dict(
        zip(consensus_tasks, run_sweep(_measure_consensus, consensus_tasks, jobs, cache="EXT-HEARTBEAT"))
    )
    caps = (15.0, 60.0) if fast else (15.0, 60.0, 240.0)
    detector_tasks = [(cap, seed) for cap in caps for seed in seeds]
    detector_outcomes = dict(
        zip(detector_tasks, run_sweep(_measure_detector, detector_tasks, jobs, cache="EXT-HEARTBEAT"))
    )
    for corrupt in (False, True):
        ok, instances = 0, []
        for seed in seeds:
            holds, checked = consensus_outcomes[(corrupt, seed, max_time)]
            ok += holds
            instances.append(checked)
        label = "corrupted" if corrupt else "clean"
        report.add_row(
            "consensus",
            label,
            f"{ok}/{len(seeds)}",
            f"median instances {sorted(instances)[len(instances) // 2]}",
        )
        expect.check(ok == len(seeds), f"consensus/{label}: failed on some seed")

    for cap in caps:
        times = []
        for seed in seeds:
            holds, converged_at = detector_outcomes[(cap, seed)]
            expect.check(holds, f"cap={cap}: completeness never converged")
            if holds:
                times.append(converged_at)
        report.add_row(
            "detector (corrupted)",
            f"cap={cap:.0f}",
            f"{len(times)}/{len(seeds)}",
            f"max SC convergence {max(times):.0f}" if times else "-",
        )
    return ExperimentResult(report=report, failures=expect.failures)
