"""UNISON: min-rule unison stabilization time versus graph diameter.

The topology layer's headline experiment.  :class:`MinUnison` runs on
complete, ring, tree, and random connected topologies from randomly
corrupted initial clocks; the measured stabilization time must never
exceed the graph's diameter, and the ring family (diameter ``n // 2``)
must visibly separate from the complete graph (diameter 1) — the
diameter law that degenerates to the paper's one-round stabilization on
the complete graph.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.kernel.topology import (
    CompleteTopology,
    RandomTopology,
    RingTopology,
    Topology,
    TreeTopology,
)
from repro.protocols.unison import MinUnison
from repro.sync.corruption import RandomCorruption
from repro.sync.engine import run_sync
from repro.util.rng import sweep_seed

FAMILIES = ("complete", "ring", "tree", "random")


def make_topology(family: str, n: int, seed: int) -> Topology:
    """The sweep's topology instance for one (family, n, seed) task."""
    if family == "complete":
        return CompleteTopology(n)
    if family == "ring":
        return RingTopology(n)
    if family == "tree":
        return TreeTopology(n)
    if family == "random":
        return RandomTopology(n, p=0.3, seed=sweep_seed("UNISON", f"gnp:n={n}", seed))
    raise ValueError(f"unknown topology family {family!r}")


def last_disagreement(history) -> int:
    """The last round whose live start-of-round clocks still differ (0 if none).

    Clocks agree *from the start of round L+1 on*, so ``L`` is the
    empirical stabilization time in rounds — directly comparable to the
    diameter bound (corrupted clocks at round 1 count as disagreement).
    """
    last = 0
    for rh in history:
        clocks = {r.clock_before for r in rh.records if r.clock_before is not None}
        if len(clocks) > 1:
            last = rh.round_no
    return last


def one_run(family: str, n: int, seed: int):
    topology = make_topology(family, n, seed)
    result = run_sync(
        MinUnison(),
        n=n,
        rounds=2 * n,
        corruption=RandomCorruption(
            seed=sweep_seed("UNISON", f"{family}:n={n}:corruption", seed)
        ),
        topology=topology,
    )
    return result, topology


def _measure(task: Tuple[str, int, int]):
    family, n, seed = task
    result, topology = one_run(family, n, seed)
    return last_disagreement(result.history), topology.diameter()


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    sizes = (8,) if fast else (8, 12)
    seeds = range(2 if fast else 5)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="UNISON",
        title="Min-rule unison: stabilization vs. diameter across topologies",
        claim="unison stabilizes within the graph diameter on every family",
        headers=["family", "n", "diameter", "seeds", "worst stabilization"],
    )
    tasks = [(family, n, seed) for family in FAMILIES for n in sizes for seed in seeds]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="UNISON")))
    worst_by_family = {}
    for family in FAMILIES:
        for n in sizes:
            rows = [outcomes[(family, n, seed)] for seed in seeds]
            worst = max(stab for stab, _diam in rows)
            diameters = sorted({diam for _stab, diam in rows})
            worst_by_family[(family, n)] = worst
            report.add_row(
                family,
                n,
                "/".join(str(d) for d in diameters),
                len(rows),
                worst,
            )
            expect.check(
                all(stab <= diam for stab, diam in rows),
                f"{family} n={n}: stabilization exceeded the diameter",
            )
    n_top = sizes[-1]
    expect.check(
        worst_by_family[("ring", n_top)] > worst_by_family[("complete", n_top)],
        f"ring n={n_top} did not separate from the complete graph",
    )
    return ExperimentResult(report=report, failures=expect.failures)
