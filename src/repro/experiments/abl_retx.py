"""ABL-RETX: retransmission + jump ablations vs the deadlock seed."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.asyncnet.oracle import WeakDetectorOracle
from repro.asyncnet.scheduler import AsyncScheduler
from repro.detectors.consensus import CTConsensus, consensus_log_agreement
from repro.experiments.base import Expectations, ExperimentResult
from repro.workloads.scenarios import ConsensusDeadlockCorruption

N = 5
MODES = ("plain", "ss-no-retransmit", "ss-no-jump", "ss")


def one_run(mode: str, all_waiting: bool, seed: int = 1, max_time: float = 250.0):
    oracle = WeakDetectorOracle(N, {}, gst=0.0, seed=seed)
    proto = CTConsensus(N, mode=mode)
    sched = AsyncScheduler(
        proto,
        N,
        seed=seed,
        gst=0.0,
        oracle=oracle,
        corruption=ConsensusDeadlockCorruption(seed=seed + 2, all_waiting=all_waiting),
        sample_interval=5.0,
    )
    return sched.run(max_time=max_time)


def run(fast: bool = False) -> ExperimentResult:
    max_time = 150.0 if fast else 250.0
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="ABL-RETX",
        title=f"Deadlock-seed corruption vs protocol modes, n={N}, quiet network",
        claim="retransmission breaks the waiting-forever deadlock ([KP90]); "
        "the jump re-aligns scattered instances — both necessary (Section 3)",
        headers=["mode", "seed variant", "recovers", "instances decided"],
    )
    for mode in MODES:
        for all_waiting, label in ((False, "scattered"), (True, "all-waiting")):
            trace = one_run(mode, all_waiting, max_time=max_time)
            verdict = consensus_log_agreement(trace)
            report.add_row(mode, label, verdict.holds, verdict.instances_checked)
            if mode == "ss":
                expect.check(verdict.holds, f"ss/{label}: failed to recover")
            else:
                expect.check(
                    not verdict.holds, f"{mode}/{label}: unexpectedly recovered"
                )
    return ExperimentResult(report=report, failures=expect.failures)
