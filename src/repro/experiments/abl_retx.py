"""ABL-RETX: retransmission + jump ablations vs the deadlock seed."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.asyncnet.oracle import WeakDetectorOracle
from repro.asyncnet.scheduler import AsyncScheduler
from repro.detectors.consensus import CTConsensus, consensus_log_agreement
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.util.rng import sweep_seed
from repro.workloads.scenarios import ConsensusDeadlockCorruption

N = 5
MODES = ("plain", "ss-no-retransmit", "ss-no-jump", "ss")
VARIANTS = ((False, "scattered"), (True, "all-waiting"))


def one_run(mode: str, all_waiting: bool, seed: int = 1, max_time: float = 250.0):
    oracle = WeakDetectorOracle(N, {}, gst=0.0, seed=seed)
    proto = CTConsensus(N, mode=mode)
    variant = "all-waiting" if all_waiting else "scattered"
    sched = AsyncScheduler(
        proto,
        N,
        seed=seed,
        gst=0.0,
        oracle=oracle,
        corruption=ConsensusDeadlockCorruption(
            seed=sweep_seed("ABL-RETX", f"{mode}:{variant}:corruption", seed),
            all_waiting=all_waiting,
        ),
        sample_interval=5.0,
    )
    return sched.run(max_time=max_time)


def _measure(task: Tuple[str, bool, float]):
    mode, all_waiting, max_time = task
    trace = one_run(mode, all_waiting, max_time=max_time)
    verdict = consensus_log_agreement(trace)
    return verdict.holds, verdict.instances_checked


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    max_time = 150.0 if fast else 250.0
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="ABL-RETX",
        title=f"Deadlock-seed corruption vs protocol modes, n={N}, quiet network",
        claim="retransmission breaks the waiting-forever deadlock ([KP90]); "
        "the jump re-aligns scattered instances — both necessary (Section 3)",
        headers=["mode", "seed variant", "recovers", "instances decided"],
    )
    tasks = [
        (mode, all_waiting, max_time) for mode in MODES for all_waiting, _ in VARIANTS
    ]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="ABL-RETX")))
    for mode in MODES:
        for all_waiting, label in VARIANTS:
            holds, instances = outcomes[(mode, all_waiting, max_time)]
            report.add_row(mode, label, holds, instances)
            if mode == "ss":
                expect.check(holds, f"ss/{label}: failed to recover")
            else:
                expect.check(not holds, f"{mode}/{label}: unexpectedly recovered")
    return ExperimentResult(report=report, failures=expect.failures)
