"""THM2: every self-check-and-halt rule defeated by the twin pair."""

from __future__ import annotations

from typing import Optional

from repro.analysis.report import ExperimentReport
from repro.core.impossibility import theorem2_scenario
from repro.experiments.base import Expectations, ExperimentResult, run_sweep


def _measure(patience: Optional[int]):
    rounds = 12 if patience is None else patience + 8
    out = theorem2_scenario(patience, rounds=rounds)
    return (
        out.views_identical,
        out.pivot_halted,
        out.pivot_uniform_in_a,
        out.pivot_rate_in_b,
        out.rule_defeated,
    )


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    rules = [None, 2] if fast else [None, 1, 2, 3, 5, 8]
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="THM2",
        title="Self-check-and-halt rules vs the indistinguishability pair",
        claim="no uniform protocol ftss-solves anything (Thm 2): halting "
        "breaks rate in the twin, not halting breaks uniformity",
        headers=[
            "rule",
            "views identical",
            "pivot halted",
            "uniformity (A)",
            "rate (B)",
            "defeated",
        ],
    )
    outcomes = run_sweep(_measure, rules, jobs, cache="THM2")
    for patience, row in zip(rules, outcomes):
        identical, halted, uniform_a, rate_b, defeated = row
        rule = "never-halt" if patience is None else f"halt-after-{patience}"
        report.add_row(rule, identical, halted, uniform_a, rate_b, defeated)
        expect.check(identical, f"{rule}: views diverged")
        expect.check(defeated, f"{rule}: both obligations held")
    return ExperimentResult(report=report, failures=expect.failures)
