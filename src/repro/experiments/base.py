"""Experiment plumbing: results, expectations, sweeps, and the registry.

Every experiment module exposes ``run(fast: bool = False, jobs:
Optional[int] = None) -> ExperimentResult``: it executes the sweep,
builds the claim-vs-measured table, and *checks the paper's claim
itself* via :class:`Expectations` — so the pass/fail knowledge lives
with the experiment, and every front-end (the pytest-benchmark harness,
the ``python -m repro.experiments`` CLI, a notebook) gets the same
verdicts.

``fast=True`` shrinks seed counts and run lengths for smoke runs; the
recorded EXPERIMENTS.md numbers come from the full (default) settings.

Sweeps run through :func:`run_sweep`, the kernel-era replacement for
the hand-rolled ``for seed in seeds`` loops: one executor that is
deterministic (results in input order, seeds namespaced per point via
:func:`repro.util.rng.sweep_seed` inside the workers), per-point
isolated (with ``jobs > 1`` each point runs in its own forked worker
process), and parallel on demand (``--jobs N`` on the CLI, or the
``REPRO_JOBS`` environment knob).
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.analysis.report import ExperimentReport

__all__ = [
    "ExperimentResult",
    "Expectations",
    "Registry",
    "default_jobs",
    "run_sweep",
    "shutdown_pool",
]

Point = TypeVar("Point")
Outcome = TypeVar("Outcome")


def default_jobs() -> int:
    """Sweep parallelism when the caller passes ``jobs=None``.

    Reads the ``REPRO_JOBS`` environment variable (default 1 —
    sequential, zero-surprise).  Invalid or non-positive values fall
    back to 1.
    """
    raw = os.environ.get("REPRO_JOBS", "")
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    return jobs if jobs >= 1 else 1


#: The persistent sweep pool: forked once, reused by every subsequent
#: ``run_sweep`` call with the same worker count.  Experiments run many
#: small sweeps back to back (one per figure row, one per exploration
#: batch); paying the fork + executor startup per *campaign* instead of
#: per *sweep* is where the pool's time goes.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS != workers:
        shutdown_pool()
    if _POOL is None:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent sweep pool (tests, benchmarks, atexit).

    Safe to call when no pool exists; the next parallel ``run_sweep``
    simply forks a fresh one.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def run_sweep(
    worker: Callable[[Point], Outcome],
    points: Sequence[Point],
    jobs: Optional[int] = None,
) -> List[Outcome]:
    """Run ``worker`` over every sweep point, optionally in parallel.

    Results come back in input order regardless of completion order, so
    verdicts never depend on scheduling.  With ``jobs <= 1`` the sweep
    runs sequentially in-process (no pickling constraints); with
    ``jobs > 1`` the points are fanned out over a ``fork``-based
    :class:`~concurrent.futures.ProcessPoolExecutor`, which requires
    ``worker`` to be a module-level function and ``points``/outcomes to
    be picklable — experiment workers therefore return small summary
    tuples/dicts, not engine objects.  Each point then executes in its
    own process: a crash or runaway allocation at one point cannot
    corrupt another (per-seed isolation).

    Determinism does not rely on ``jobs``: workers derive all
    randomness from their point via
    :func:`repro.util.rng.sweep_seed`-namespaced seeds, so
    ``run_sweep(w, ps, jobs=4) == run_sweep(w, ps, jobs=1)``.

    The worker pool is *persistent*: the first parallel sweep forks it,
    and later sweeps with the same ``jobs`` reuse it instead of paying
    executor startup per call (see :func:`shutdown_pool`).  This is why
    workers must be pure functions of their point — a forked worker
    observes parent module state as of the first sweep, not the
    current one.  Dispatch is chunked so a large sweep costs O(chunks)
    round trips rather than O(points).
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(points) <= 1:
        return [worker(point) for point in points]
    pool = _get_pool(jobs)
    chunksize = max(1, len(points) // (jobs * 4))
    return list(pool.map(worker, points, chunksize=chunksize))


@dataclass
class ExperimentResult:
    """One experiment's table plus the verdicts on the paper's claims."""

    report: ExperimentReport
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [self.report.render()]
        if self.passed:
            lines.append("verdict: PASS")
        else:
            lines.append("verdict: FAIL")
            lines.extend(f"  - {failure}" for failure in self.failures)
        return "\n".join(lines)


class Expectations:
    """Collects claim checks so one failure doesn't hide the rest."""

    def __init__(self) -> None:
        self.failures: List[str] = []

    def check(self, condition: bool, message: str) -> bool:
        if not condition:
            self.failures.append(message)
        return condition


#: An experiment entry point.
Runner = Callable[..., ExperimentResult]


class Registry:
    """Name → runner mapping with stable iteration order."""

    def __init__(self) -> None:
        self._runners: Dict[str, Runner] = {}

    def add(self, experiment_id: str, runner: Runner) -> None:
        if experiment_id in self._runners:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        self._runners[experiment_id] = runner

    def ids(self) -> List[str]:
        return list(self._runners)

    def get(self, experiment_id: str) -> Runner:
        try:
            return self._runners[experiment_id]
        except KeyError:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; "
                f"known: {', '.join(self._runners)}"
            ) from None

    def run(
        self,
        experiment_id: str,
        fast: bool = False,
        jobs: Optional[int] = None,
    ) -> ExperimentResult:
        return self.get(experiment_id)(fast=fast, jobs=jobs)
