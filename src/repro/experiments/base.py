"""Experiment plumbing: results, expectations, sweeps, and the registry.

Every experiment module exposes ``run(fast: bool = False, jobs:
Optional[int] = None) -> ExperimentResult``: it executes the sweep,
builds the claim-vs-measured table, and *checks the paper's claim
itself* via :class:`Expectations` — so the pass/fail knowledge lives
with the experiment, and every front-end (the pytest-benchmark harness,
the ``python -m repro.experiments`` CLI, a notebook) gets the same
verdicts.

``fast=True`` shrinks seed counts and run lengths for smoke runs; the
recorded EXPERIMENTS.md numbers come from the full (default) settings.

Sweeps run through :func:`run_sweep`, the kernel-era replacement for
the hand-rolled ``for seed in seeds`` loops: one executor that is
deterministic (results in input order, seeds namespaced per point via
:func:`repro.util.rng.sweep_seed` inside the workers), per-point
isolated (with ``jobs > 1`` each point runs in its own forked worker
process), parallel on demand (``--jobs N`` on the CLI, or the
``REPRO_JOBS`` environment knob), and memoized on request (``cache=``
names a :mod:`repro.cache` namespace; known points are answered from
the content-addressed run cache and only the misses execute).
"""

from __future__ import annotations

import atexit
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

import repro.cache as run_cache_module
from repro.analysis.report import ExperimentReport
from repro.cache.digest import CanonicalizationError

__all__ = [
    "ExperimentResult",
    "Expectations",
    "Registry",
    "SWEEP_BACKENDS",
    "default_jobs",
    "run_sweep",
    "shutdown_pool",
]

#: Execution backends ``run_sweep`` can route a sweep to.
SWEEP_BACKENDS = ("sync", "array")

Point = TypeVar("Point")
Outcome = TypeVar("Outcome")


def default_jobs() -> int:
    """Sweep parallelism when the caller passes ``jobs=None``.

    Reads the ``REPRO_JOBS`` environment variable (default 1 —
    sequential, zero-surprise).  Invalid or non-positive values fall
    back to 1.
    """
    raw = os.environ.get("REPRO_JOBS", "")
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    return jobs if jobs >= 1 else 1


#: The persistent sweep pool: forked once, reused by every subsequent
#: ``run_sweep`` call with the same worker count.  Experiments run many
#: small sweeps back to back (one per figure row, one per exploration
#: batch); paying the fork + executor startup per *campaign* instead of
#: per *sweep* is where the pool's time goes.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS != workers:
        shutdown_pool()
    if _POOL is None:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent sweep pool (tests, benchmarks, atexit).

    Safe to call when no pool exists; the next parallel ``run_sweep``
    simply forks a fresh one.  Also flushes the run cache's buffered
    writes: outcomes are cached parent-side as chunks complete, and a
    torn-down pool must not strand them in memory.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0
    run_cache_module.flush()


atexit.register(shutdown_pool)


def _run_chunk(worker: Callable[[Point], Outcome], chunk: List[Point]) -> List[Outcome]:
    """Module-level (hence picklable) chunk executor for the fork pool."""
    return [worker(point) for point in chunk]


#: Placeholder for a not-yet-computed outcome slot (never a real outcome).
_PENDING = object()


def _work_chunks(
    indices: List[int], weights: Sequence[float], target_chunks: int
) -> List[List[int]]:
    """Contiguous partition of ``indices`` balanced by estimated work.

    The old fixed ``len // (jobs * 4)`` chunk size serialized one huge
    point behind a chunk of tiny ones; here a chunk closes once it
    carries ``total / target_chunks`` worth of work, and closes *early*
    when the next point alone would overshoot — so an n=10^5 point gets
    its own chunk instead of queueing behind n=10 neighbors.
    """
    if not indices:
        return []
    total = sum(weights)
    target = total / max(1, min(target_chunks, len(indices)))
    chunks: List[List[int]] = []
    current: List[int] = []
    acc = 0.0
    for index, weight in zip(indices, weights):
        if current and acc + weight > target:
            chunks.append(current)
            current = []
            acc = 0.0
        current.append(index)
        acc += weight
        if acc >= target:
            chunks.append(current)
            current = []
            acc = 0.0
    if current:
        chunks.append(current)
    return chunks


def run_sweep(
    worker: Callable[[Point], Outcome],
    points: Sequence[Point],
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    on_outcome: Optional[Callable[[int, Point, Outcome], None]] = None,
    backend: Optional[str] = None,
) -> List[Outcome]:
    """Run ``worker`` over every sweep point, optionally in parallel.

    Results come back in input order regardless of completion order, so
    verdicts never depend on scheduling.  With ``jobs <= 1`` the sweep
    runs sequentially in-process (no pickling constraints); with
    ``jobs > 1`` the points are fanned out over a ``fork``-based
    :class:`~concurrent.futures.ProcessPoolExecutor`, which requires
    ``worker`` to be a module-level function and ``points``/outcomes to
    be picklable — experiment workers therefore return small summary
    tuples/dicts, not engine objects.  Each point then executes in its
    own process: a crash or runaway allocation at one point cannot
    corrupt another (per-seed isolation).

    Determinism does not rely on ``jobs``: workers derive all
    randomness from their point via
    :func:`repro.util.rng.sweep_seed`-namespaced seeds, so
    ``run_sweep(w, ps, jobs=4) == run_sweep(w, ps, jobs=1)``.

    ``cache`` opts the sweep into the content-addressed run cache
    (:mod:`repro.cache`) under the given namespace — normally the
    experiment id.  Points whose outcome is already cached are answered
    without executing; only the misses are dispatched, and their
    outcomes are written back *by the parent* (workers never touch the
    cache).  This requires what the pool already requires: ``worker``
    must be a pure, module-level function of its point.  Points without
    a canonical encoding silently bypass the cache.

    ``on_outcome(index, point, outcome)`` is invoked in input order as
    results become available — cache hits immediately, dispatched
    chunks as each completes — so progress observers don't wait for the
    whole sweep.

    The worker pool is *persistent*: the first parallel sweep forks it,
    and later sweeps with the same ``jobs`` reuse it instead of paying
    executor startup per call (see :func:`shutdown_pool`).  Dispatch is
    chunked (one ``submit`` per chunk, results gathered in submission
    order) so a large sweep costs O(chunks) round trips while early
    chunks surface as soon as they finish.  Chunks are sized by
    *estimated work*, not point count: when the worker exposes
    ``estimate_cost(point) -> float`` (typically n × rounds), heavy
    points are isolated instead of serializing a chunk of cheap ones.

    ``backend="array"`` routes cache misses through the worker's
    batched twin — ``worker.array_batch(points) -> [outcome, ...]``,
    executing all points in one vectorized pass via
    :func:`repro.array.run_array` — and falls back **loudly**
    (``RuntimeWarning``) to the per-point reference path for workers
    without a batched twin, points the optional
    ``worker.array_eligible(point)`` predicate rejects, or batches the
    array engine refuses (``ArrayEligibilityError``).  Cached outcomes
    never cross backends: an array-backed sweep reads and writes the
    ``{cache}@array`` namespace, so its fingerprints are disjoint from
    the reference engine's.
    """
    if jobs is None:
        jobs = default_jobs()
    if backend is not None and backend not in SWEEP_BACKENDS:
        raise ValueError(
            f"unknown sweep backend {backend!r}; expected one of {SWEEP_BACKENDS}"
        )
    use_array = backend == "array"
    if use_array and cache:
        cache = f"{cache}@array"

    store = run_cache_module.active_cache() if cache else None
    keys: Optional[List[str]] = None
    if store is not None:
        try:
            keys = [store.key(cache, worker, point) for point in points]
        except CanonicalizationError:
            store = None  # uncacheable points: plain execution

    results: List[Outcome] = [_PENDING] * len(points)  # type: ignore[list-item]
    if store is not None and keys is not None:
        miss_indices = []
        for index, key in enumerate(keys):
            hit, value = store.get(key, cache)
            if hit:
                results[index] = value
            else:
                miss_indices.append(index)
    else:
        miss_indices = list(range(len(points)))

    emitted = 0

    def _emit_ready() -> None:
        nonlocal emitted
        while emitted < len(results) and results[emitted] is not _PENDING:
            if on_outcome is not None:
                on_outcome(emitted, points[emitted], results[emitted])
            emitted += 1

    def _record(index: int, outcome: Outcome) -> None:
        results[index] = outcome
        if store is not None and keys is not None:
            store.put(
                keys[index],
                outcome,
                namespace=cache,
                worker=worker,
                point=points[index],
            )

    _emit_ready()

    if use_array and miss_indices:
        miss_indices = _run_array_batch(
            worker, points, miss_indices, store, _record, jobs
        )
        _emit_ready()

    if store is not None and miss_indices:
        store.note_executed("sync", len(miss_indices))
    if jobs <= 1 or len(miss_indices) <= 1:
        for index in miss_indices:
            _record(index, worker(points[index]))
            _emit_ready()
        return results

    pool = _get_pool(jobs)
    estimate = getattr(worker, "estimate_cost", None)
    if estimate is not None:
        weights = [max(float(estimate(points[i])), 1.0) for i in miss_indices]
    else:
        weights = [1.0] * len(miss_indices)
    chunks = _work_chunks(miss_indices, weights, jobs * 4)
    futures = [
        pool.submit(_run_chunk, worker, [points[i] for i in chunk])
        for chunk in chunks
    ]
    for chunk, future in zip(chunks, futures):
        for index, outcome in zip(chunk, future.result()):
            _record(index, outcome)
        _emit_ready()
    return results


def _run_array_chunk(worker, chunk_points):
    """One shard's batched execution (module-level, hence picklable).

    Refusals come back as values, not raised exceptions, so a shard
    refused by the array engine falls back without poisoning its
    siblings in the pool.
    """
    from repro.array.protocols import ArrayEligibilityError

    try:
        return ("ok", worker.array_batch(chunk_points))
    except ArrayEligibilityError as exc:
        return ("refused", str(exc))


def _run_array_batch(
    worker: Callable[[Point], Outcome],
    points: Sequence[Point],
    miss_indices: List[int],
    store,
    record: Callable[[int, Outcome], None],
    jobs: int,
) -> List[int]:
    """Route eligible cache misses through ``worker.array_batch``.

    With ``jobs > 1`` the eligible batch is sharded into contiguous,
    work-balanced lane chunks (the same :func:`_work_chunks` sizing the
    reference path uses) and fanned out over the persistent fork pool —
    each worker process runs one multi-lane ``run_array`` — with
    outcomes merged back by point index, so the result is independent
    of shard count and completion order.

    Returns the indices still pending for the reference path:
    ineligible points, plus every shard the array engine refused.  All
    fallbacks aggregate into **one** ``RuntimeWarning`` per sweep that
    lists each reason — loud, but not once per miss chunk — and are
    tallied on the cache's ``executed_fallback`` counter.
    """
    reasons: List[str] = []
    pending: List[int] = []

    def _finish() -> List[int]:
        pending.sort()
        if reasons:
            warnings.warn(
                "run_sweep(backend='array'): "
                + "; ".join(reasons)
                + f"; {len(pending)} points fall back to the reference engine",
                RuntimeWarning,
                stacklevel=4,
            )
        if store is not None and pending:
            store.note_fallback(len(pending))
        return pending

    array_batch = getattr(worker, "array_batch", None)
    if array_batch is None:
        reasons.append(f"worker {worker!r} has no array_batch twin")
        pending.extend(miss_indices)
        return _finish()
    eligible_check = getattr(worker, "array_eligible", None)
    if eligible_check is None:
        batch = list(miss_indices)
    else:
        batch = [i for i in miss_indices if eligible_check(points[i])]
        if len(batch) < len(miss_indices):
            reasons.append(
                f"{len(miss_indices) - len(batch)} of {len(miss_indices)} "
                "points are not array-eligible"
            )
            chosen = set(batch)
            pending.extend(i for i in miss_indices if i not in chosen)
    if not batch:
        return _finish()

    if jobs > 1 and len(batch) > 1:
        estimate = getattr(worker, "estimate_cost", None)
        if estimate is not None:
            weights = [max(float(estimate(points[i])), 1.0) for i in batch]
        else:
            weights = [1.0] * len(batch)
        shards = _work_chunks(batch, weights, jobs)
    else:
        shards = [batch]

    if len(shards) == 1:
        payloads = [_run_array_chunk(worker, [points[i] for i in shards[0]])]
    else:
        pool = _get_pool(jobs)
        futures = [
            pool.submit(_run_array_chunk, worker, [points[i] for i in shard])
            for shard in shards
        ]
        payloads = [future.result() for future in futures]

    executed = 0
    for shard, (status, result) in zip(shards, payloads):
        if status == "refused":
            reason = f"batched path refused ({result})"
            if reason not in reasons:
                reasons.append(reason)
            pending.extend(shard)
            continue
        if len(result) != len(shard):
            raise RuntimeError(
                f"array_batch returned {len(result)} outcomes for "
                f"{len(shard)} points"
            )
        executed += len(shard)
        for index, outcome in zip(shard, result):
            record(index, outcome)
    if store is not None and executed:
        store.note_executed("array", executed)
    return _finish()


@dataclass
class ExperimentResult:
    """One experiment's table plus the verdicts on the paper's claims."""

    report: ExperimentReport
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [self.report.render()]
        if self.passed:
            lines.append("verdict: PASS")
        else:
            lines.append("verdict: FAIL")
            lines.extend(f"  - {failure}" for failure in self.failures)
        return "\n".join(lines)


class Expectations:
    """Collects claim checks so one failure doesn't hide the rest."""

    def __init__(self) -> None:
        self.failures: List[str] = []

    def check(self, condition: bool, message: str) -> bool:
        if not condition:
            self.failures.append(message)
        return condition


#: An experiment entry point.
Runner = Callable[..., ExperimentResult]


class Registry:
    """Name → runner mapping with stable iteration order."""

    def __init__(self) -> None:
        self._runners: Dict[str, Runner] = {}

    def add(self, experiment_id: str, runner: Runner) -> None:
        if experiment_id in self._runners:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        self._runners[experiment_id] = runner

    def ids(self) -> List[str]:
        return list(self._runners)

    def get(self, experiment_id: str) -> Runner:
        try:
            return self._runners[experiment_id]
        except KeyError:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; "
                f"known: {', '.join(self._runners)}"
            ) from None

    def run(
        self,
        experiment_id: str,
        fast: bool = False,
        jobs: Optional[int] = None,
    ) -> ExperimentResult:
        return self.get(experiment_id)(fast=fast, jobs=jobs)
