"""Experiment plumbing: results, expectations, and the registry contract.

Every experiment module exposes ``run(fast: bool = False) ->
ExperimentResult``: it executes the sweep, builds the claim-vs-measured
table, and *checks the paper's claim itself* via :class:`Expectations`
— so the pass/fail knowledge lives with the experiment, and every
front-end (the pytest-benchmark harness, the ``python -m
repro.experiments`` CLI, a notebook) gets the same verdicts.

``fast=True`` shrinks seed counts and run lengths for smoke runs; the
recorded EXPERIMENTS.md numbers come from the full (default) settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.analysis.report import ExperimentReport

__all__ = ["ExperimentResult", "Expectations", "Registry"]


@dataclass
class ExperimentResult:
    """One experiment's table plus the verdicts on the paper's claims."""

    report: ExperimentReport
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [self.report.render()]
        if self.passed:
            lines.append("verdict: PASS")
        else:
            lines.append("verdict: FAIL")
            lines.extend(f"  - {failure}" for failure in self.failures)
        return "\n".join(lines)


class Expectations:
    """Collects claim checks so one failure doesn't hide the rest."""

    def __init__(self) -> None:
        self.failures: List[str] = []

    def check(self, condition: bool, message: str) -> bool:
        if not condition:
            self.failures.append(message)
        return condition


#: An experiment entry point.
Runner = Callable[..., ExperimentResult]


class Registry:
    """Name → runner mapping with stable iteration order."""

    def __init__(self) -> None:
        self._runners: Dict[str, Runner] = {}

    def add(self, experiment_id: str, runner: Runner) -> None:
        if experiment_id in self._runners:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        self._runners[experiment_id] = runner

    def ids(self) -> List[str]:
        return list(self._runners)

    def get(self, experiment_id: str) -> Runner:
        try:
            return self._runners[experiment_id]
        except KeyError:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; "
                f"known: {', '.join(self._runners)}"
            ) from None

    def run(self, experiment_id: str, fast: bool = False) -> ExperimentResult:
        return self.get(experiment_id)(fast=fast)
