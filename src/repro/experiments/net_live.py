"""NET-LIVE: live cluster conformance against the simulators.

The headline claim of the :mod:`repro.net` subsystem: one seeded
:class:`~repro.kernel.faults.FaultPlan` driven through a live asyncio
cluster — real message passing over in-process queues *and* loopback
TCP, wire-level delay/duplication injected below the protocol — yields
the **same histories and the same paper verdicts** as the synchronous
engine, and the same property verdicts as the asynchronous scheduler.

Three scenarios, mirroring the simulated experiments they shadow:

- **FIG1-live** — round agreement under general omission + corruption
  + wire faults; history identity and ftss@1 parity
  (:func:`~repro.core.solvability.check_definition`).
- **FIG3-live** — the compiled Π⁺ (FloodMin, f=2) under crashes +
  corruption; ftss@final_round parity, with the streaming
  :class:`~repro.explore.checkers.StreamingCompilerCheck` riding both
  buses as an independent oracle.
- **FIG4-live** — the ◇W→◇S stack on real timers (scaled wall clock);
  verdict-level parity for strong completeness / eventual weak
  accuracy and crash-set equality.

Everything runs in-process on asyncio; ``run`` shuts down the
persistent fork pool first because forking a process after this
process has started event loops (and their helper threads) is unsafe.

The *engine-side* reference of each sync scenario (history digest +
verdicts) is deterministic, so it is memoized through the run cache
under the ``NET-LIVE-REF:*`` namespaces: warm invocations skip the
simulated runs entirely.  The *live* runs always execute — caching
them would compare the cache with itself and mask live-runtime drift
(``tests/net/test_conformance_cache.py`` pins both properties).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.analysis.report import ExperimentReport
from repro.asyncnet.oracle import WeakDetectorOracle
from repro.cache import cached_call
from repro.core.compiler import compile_protocol
from repro.core.problems import ClockAgreementProblem, RepeatedConsensusProblem
from repro.core.rounds import RoundAgreementProtocol
from repro.detectors.strong import StrongDetector
from repro.experiments.base import Expectations, ExperimentResult, shutdown_pool
from repro.explore.checkers import StreamingCompilerCheck
from repro.kernel.faults import FaultPlan, WireFaults
from repro.net.conformance import (
    SyncReference,
    compute_sync_reference,
    verify_detector_conformance,
    verify_sync_conformance,
)
from repro.protocols.floodmin import FloodMinConsensus
from repro.sync.adversary import FaultMode, RandomAdversary
from repro.sync.corruption import RandomCorruption
from repro.util.rng import sweep_seed

TRANSPORTS = ("inproc", "tcp")
#: Hard wall-clock ceiling per live run; the CI smoke gate is 60s total.
DEADLINE = 20.0
#: Wire fault envelope shared by the sync scenarios: up to 2ms of
#: skew and a healthy duplication rate, both absorbed by the round
#: layer (barrier pacing + sender dedup) without touching the history.
_WIRE_DELAY = (0.0, 0.002)
_WIRE_DUP = 0.25


def _wire(scenario: str, seed: int) -> WireFaults:
    return WireFaults(
        delay=_WIRE_DELAY,
        duplication=_WIRE_DUP,
        seed=sweep_seed("NET-LIVE", f"{scenario}:wire", seed),
    )


def _tally(
    row_reports: List, expect: Expectations, scenario: str
) -> tuple:
    """Count per-transport passes and surface the first failure text."""
    passed = sum(r.passed for r in row_reports)
    for r in row_reports:
        for failure in r.failures():
            expect.check(False, f"{scenario}: {failure}")
    return passed, len(row_reports)


#: FIG1-live scenario shape (shared by the live runs and the memoized
#: engine-side reference worker).
_FIG1_N, _FIG1_F, _FIG1_ROUNDS = 4, 1, 24

#: FIG3-live scenario shape.
_FIG3_PROPOSALS = (3, 1, 4, 1, 5)
_FIG3_N, _FIG3_F = 5, 2


def _fig1_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        omissions=RandomAdversary(
            n=_FIG1_N,
            f=_FIG1_F,
            mode=FaultMode.GENERAL_OMISSION,
            rate=0.4,
            seed=sweep_seed("NET-LIVE", "fig1:adversary", seed),
        ),
        initial_corruption=RandomCorruption(
            seed=sweep_seed("NET-LIVE", "fig1:corruption", seed)
        ),
        wire=_wire("fig1", seed),
    )


def _fig1_reference(seed: int) -> dict:
    """Engine-side FIG1 reference (module-level: run-cache memoizable)."""
    return compute_sync_reference(
        RoundAgreementProtocol,
        _FIG1_N,
        _FIG1_ROUNDS,
        lambda: _fig1_plan(seed),
        ClockAgreementProblem(),
        definition="ftss",
        stabilization_time=1,
    ).to_jsonable()


def _fig1_live(seeds: Sequence[int], expect: Expectations) -> List:
    row_reports: List = []
    for seed in seeds:
        reference = SyncReference.from_jsonable(
            cached_call("NET-LIVE-REF:fig1", _fig1_reference, seed)
        )
        reports, _sim, _live = verify_sync_conformance(
            RoundAgreementProtocol,
            _FIG1_N,
            _FIG1_ROUNDS,
            lambda: _fig1_plan(seed),
            ClockAgreementProblem(),
            definition="ftss",
            stabilization_time=1,
            transports=TRANSPORTS,
            deadline=DEADLINE,
            reference=reference,
        )
        row_reports.extend(reports)
    return row_reports


def _fig3_instance() -> FloodMinConsensus:
    return FloodMinConsensus(f=_FIG3_F, proposals=list(_FIG3_PROPOSALS))


def _fig3_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        omissions=RandomAdversary(
            n=_FIG3_N,
            f=_FIG3_F,
            mode=FaultMode.CRASH,
            rate=0.2,
            seed=sweep_seed("NET-LIVE", "fig3:adversary", seed),
        ),
        initial_corruption=RandomCorruption(
            seed=sweep_seed("NET-LIVE", "fig3:corruption", seed)
        ),
        wire=_wire("fig3", seed),
    )


def _fig3_reference(seed: int) -> dict:
    """Engine-side FIG3 reference (module-level: run-cache memoizable)."""
    pi = _fig3_instance()
    props = frozenset(pi.proposal_for(p) for p in range(_FIG3_N))
    return compute_sync_reference(
        lambda: compile_protocol(_fig3_instance()),
        _FIG3_N,
        8 * pi.final_round,
        lambda: _fig3_plan(seed),
        RepeatedConsensusProblem(pi.final_round, valid_proposals=props),
        definition="ftss",
        stabilization_time=pi.final_round,
        checker_factory=lambda: StreamingCompilerCheck(pi.final_round, props),
    ).to_jsonable()


def _fig3_live(seeds: Sequence[int], expect: Expectations) -> List:
    pi = _fig3_instance()
    rounds = 8 * pi.final_round
    props = frozenset(pi.proposal_for(p) for p in range(_FIG3_N))
    sigma = RepeatedConsensusProblem(pi.final_round, valid_proposals=props)
    row_reports: List = []
    for seed in seeds:
        reference = SyncReference.from_jsonable(
            cached_call("NET-LIVE-REF:fig3", _fig3_reference, seed)
        )

        def checker() -> StreamingCompilerCheck:
            return StreamingCompilerCheck(pi.final_round, props)

        reports, _sim, _live = verify_sync_conformance(
            lambda: compile_protocol(_fig3_instance()),
            _FIG3_N,
            rounds,
            lambda: _fig3_plan(seed),
            sigma,
            definition="ftss",
            stabilization_time=pi.final_round,
            transports=TRANSPORTS,
            checker_factory=checker,
            deadline=DEADLINE,
            reference=reference,
        )
        row_reports.extend(reports)
    return row_reports


def _fig4_live(seeds: Sequence[int], expect: Expectations) -> List:
    n, gst, duration = 4, 30.0, 80.0
    crashes = {n - 1: 10.0, n - 2: 20.0}
    row_reports: List = []
    for seed in seeds:
        def plan() -> FaultPlan:
            return FaultPlan(
                crashes=dict(crashes),
                gst=gst,
                initial_corruption=RandomCorruption(
                    seed=sweep_seed("NET-LIVE", "fig4:corruption", seed)
                ),
            )

        def oracle() -> WeakDetectorOracle:
            return WeakDetectorOracle(n, crashes, gst=gst, seed=seed)

        reports, _sim, _live = verify_detector_conformance(
            StrongDetector,
            n,
            duration,
            plan,
            oracle,
            seed=seed,
            transports=TRANSPORTS,
            sample_interval=2.0,
            tick_interval=1.0,
            time_scale=0.01,
            deadline=DEADLINE,
        )
        row_reports.extend(reports)
    return row_reports


_SCENARIOS: List[tuple] = [
    ("FIG1-live", "round agreement, omission+corruption+wire", _fig1_live, True),
    ("FIG3-live", "compiled Π⁺ (FloodMin f=2), crashes", _fig3_live, True),
    ("FIG4-live", "◇W→◇S detector, scaled real time", _fig4_live, False),
]


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    # The fork pool must die before any event loop starts: forking a
    # process that owns asyncio helper threads deadlocks children.
    shutdown_pool()
    del jobs  # live runs are inherently serial (one loop, real timers)
    seeds = range(2 if fast else 4)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="NET-LIVE",
        title="Live cluster conformance: one FaultPlan, two substrates",
        claim="live asyncio runs (inproc + TCP, wire faults injected) "
        "reproduce the simulator's histories and verdicts exactly",
        headers=["scenario", "parity", "seeds", "runs passed", "transports"],
    )
    for scenario, _desc, body, history_level in _SCENARIOS:
        row_reports = body(list(seeds), expect)
        passed, total = _tally(row_reports, expect, scenario)
        report.add_row(
            scenario,
            "history identity" if history_level else "property verdicts",
            len(seeds),
            f"{passed}/{total}",
            "+".join(TRANSPORTS),
        )
        expect.check(
            passed == total, f"{scenario}: live/simulated divergence on some run"
        )
    return ExperimentResult(report=report, failures=expect.failures)
