"""EXT-BYZ: systemic failures vs malicious processes (paper §1.2).

The paper's related-work section draws the line: systemic tolerance
aims at *every* process's state being corrupted (once), while
tolerating malicious (Byzantine) processes requires bounding the
number of liars (typically a third) — superficially similar, deeply
different.  This experiment runs the comparison:

- a Byzantine-strength protocol (phase-queen, n > 4f) shrugs off
  continual payload lies;
- a crash-only protocol (FloodMin) collapses under a single poisoner;
- Figure 1's round agreement collapses under *continual* clock forgery
  (a liar is a de-stabilizing event every round — piecewise stability
  gives no traction against a permanent in-coterie forger);
- yet the very same round agreement shrugs off *every process*
  corrupted simultaneously — the regime it was designed for.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.core.canonical import run_ft
from repro.core.problems import ClockAgreementProblem, ConsensusProblem
from repro.core.rounds import RoundAgreementProtocol
from repro.core.solvability import ft_check, ftss_check
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.protocols.floodmin import FloodMinConsensus
from repro.protocols.phaseking import PhaseQueenConsensus
from repro.sync.adversary import ByzantineAdversary
from repro.sync.corruption import RandomCorruption
from repro.sync.engine import run_sync
from repro.util.rng import sweep_seed
from repro.workloads.scenarios import flip_binary_fields, forge_clock, poison_floodmin

SIGMA = ConsensusProblem(
    decision_of=lambda s: s["inner"].get("decision"),
    proposal_of=lambda s: s["inner"].get("proposal"),
)


def phasequeen_under_lies(seed: int) -> bool:
    pq = PhaseQueenConsensus(f=2, n=9, proposals=[0, 1, 1, 0, 1, 0, 0, 1, 1])
    adversary = ByzantineAdversary(
        9, 2, flip_binary_fields, rate=0.8,
        seed=sweep_seed("EXT-BYZ", "phase-queen:adversary", seed),
    )
    return ft_check(run_ft(pq, n=9, adversary=adversary).history, SIGMA).holds


def floodmin_under_poison(seed: int) -> bool:
    fm = FloodMinConsensus(f=2, proposals=[3, 1, 4, 1, 5])
    adversary = ByzantineAdversary(
        5, 2, poison_floodmin, rate=0.8,
        seed=sweep_seed("EXT-BYZ", "floodmin:adversary", seed),
    )
    return ft_check(run_ft(fm, n=5, adversary=adversary).history, SIGMA).holds


def rounds_under_forgery(seed: int) -> bool:
    adversary = ByzantineAdversary(
        5, 1, forge_clock, rate=0.5,
        seed=sweep_seed("EXT-BYZ", "forgery:adversary", seed),
    )
    history = run_sync(
        RoundAgreementProtocol(), n=5, rounds=25, adversary=adversary
    ).history
    return ftss_check(history, ClockAgreementProblem(), 1).holds


def rounds_under_total_corruption(seed: int) -> bool:
    history = run_sync(
        RoundAgreementProtocol(),
        n=5,
        rounds=25,
        corruption=RandomCorruption(
            seed=sweep_seed("EXT-BYZ", "total:corruption", seed)
        ),
    ).history
    return ftss_check(history, ClockAgreementProblem(), 1).holds


_ROWS = (
    ("phase-queen (n>4f) / continual Byzantine lies", phasequeen_under_lies, True),
    ("floodmin (crash-only) / continual poisoning", floodmin_under_poison, False),
    ("round agreement / continual clock forgery", rounds_under_forgery, False),
    ("round agreement / all processes corrupted once", rounds_under_total_corruption, True),
)


def _measure(task: Tuple[int, int]) -> bool:
    row_index, seed = task
    return _ROWS[row_index][1](seed)


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(4 if fast else 12)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="EXT-BYZ",
        title="Systemic failures vs malicious processes (§1.2)",
        claim="systemic tolerance covers every process corrupted once; "
        "Byzantine tolerance covers a bounded fraction lying forever — "
        "neither implies the other",
        headers=["protocol / failure regime", "survives"],
    )
    tasks = [(row_index, seed) for row_index in range(len(_ROWS)) for seed in seeds]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="EXT-BYZ")))
    for row_index, (label, _, should_survive) in enumerate(_ROWS):
        ok = sum(outcomes[(row_index, seed)] for seed in seeds)
        report.add_row(label, f"{ok}/{len(seeds)}")
        if should_survive:
            expect.check(ok == len(seeds), f"{label}: unexpectedly failed")
        else:
            expect.check(ok == 0, f"{label}: unexpectedly survived")
    return ExperimentResult(report=report, failures=expect.failures)
