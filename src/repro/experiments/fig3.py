"""FIG3: the compiled Π⁺ (Figure 3) — correctness and overhead."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.metrics import message_overhead, run_message_stats
from repro.analysis.report import ExperimentReport
from repro.core.canonical import CanonicalRunner
from repro.core.compiler import compile_protocol
from repro.core.problems import RepeatedConsensusProblem
from repro.core.solvability import ftss_check
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.protocols.floodmin import FloodMinConsensus
from repro.protocols.phaseking import PhaseQueenConsensus
from repro.protocols.repeated import iteration_decisions
from repro.sync.adversary import FaultMode, RandomAdversary
from repro.sync.corruption import RandomCorruption
from repro.sync.engine import run_sync
from repro.util.rng import sweep_seed


def cases():
    return [
        (FloodMinConsensus(f=2, proposals=[3, 1, 4, 1, 5]), 5, FaultMode.CRASH),
        (
            PhaseQueenConsensus(f=1, n=5, proposals=[0, 1, 1, 0, 1]),
            5,
            FaultMode.GENERAL_OMISSION,
        ),
    ]


def _measure(task: Tuple[int, int]):
    index, seed = task
    pi, n, mode = cases()[index]
    plus = compile_protocol(pi)
    props = frozenset(pi.proposal_for(p) for p in range(n))
    sigma = RepeatedConsensusProblem(pi.final_round, valid_proposals=props)
    adversary = RandomAdversary(
        n=n,
        f=pi.f,
        mode=mode,
        rate=0.2,
        seed=sweep_seed("FIG3", f"{pi.name}:adversary", seed),
    )
    res = run_sync(
        plus,
        n=n,
        rounds=12 * pi.final_round,
        adversary=adversary,
        corruption=RandomCorruption(
            seed=sweep_seed("FIG3", f"{pi.name}:corruption", seed)
        ),
    )
    ftss_ok = ftss_check(res.history, sigma, pi.final_round).holds
    return ftss_ok, len(iteration_decisions(res.history))


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(3 if fast else 8)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="FIG3",
        title="Compiled Π⁺: correctness under corruption + superimposition cost",
        claim="Π⁺ ftss-solves Σ⁺ with stabilization final_round (Thm 4); "
        "cost = round tags + suspect bookkeeping",
        headers=[
            "protocol",
            "final_round",
            "ftss holds",
            "iterations/run (min-max)",
            "byte overhead vs bare Π",
        ],
    )
    all_cases = cases()
    tasks = [(index, seed) for index in range(len(all_cases)) for seed in seeds]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="FIG3")))
    for index, (pi, n, _mode) in enumerate(all_cases):
        plus = compile_protocol(pi)
        ftss_ok = sum(outcomes[(index, seed)][0] for seed in seeds)
        decisions_per_run = [outcomes[(index, seed)][1] for seed in seeds]

        bare = run_sync(CanonicalRunner(pi), n=n, rounds=pi.final_round)
        rich = run_sync(plus, n=n, rounds=12 * pi.final_round)
        overhead = message_overhead(
            run_message_stats(bare.history), run_message_stats(rich.history)
        )
        report.add_row(
            plus.name,
            pi.final_round,
            f"{ftss_ok}/{len(seeds)}",
            f"{min(decisions_per_run)}-{max(decisions_per_run)}",
            f"{overhead:.2f}x",
        )
        expect.check(ftss_ok == len(seeds), f"{plus.name}: ftss failed on some seed")
        expect.check(
            min(decisions_per_run) >= 8,
            f"{plus.name}: too few iterations completed",
        )
    return ExperimentResult(report=report, failures=expect.failures)
