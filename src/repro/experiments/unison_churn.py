"""UNISON-CHURN: unison recovery under join/leave and partition churn.

One churn gauntlet per (family, seed) task: a process leaves and later
rejoins, then the graph partitions into two blocks, a mid-partition
systemic corruption scatters the clocks (so the blocks converge to
*different* values), and the partition heals.  The claim under test is
the recovery law: once the schedule quiesces — after the heal — the
min rule re-floods the global minimum and the whole graph re-agrees
within one diameter.  A second expectation drives the ``unison``
exploration target (a budgeted slice) and demands zero findings.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.experiments.unison import last_disagreement, make_topology
from repro.kernel.faults import FaultPlan
from repro.kernel.topology import ChurnEvent, ChurnSchedule
from repro.protocols.unison import MinUnison
from repro.sync.corruption import RandomCorruption
from repro.sync.engine import run_sync
from repro.util.rng import sweep_seed

FAMILIES = ("ring", "random")
N = 8

#: The churn gauntlet (rounds are 1-based): leave/rejoin, then a
#: two-block partition corrupted mid-split, then heal.
LEAVE_ROUND = 2
REJOIN_ROUND = 5
PARTITION_ROUND = 8
CORRUPTION_ROUND = 9
HEAL_ROUND = 11


def churn_schedule() -> ChurnSchedule:
    half = frozenset(range(N // 2))
    rest = frozenset(range(N // 2, N))
    return ChurnSchedule(
        (
            ChurnEvent(LEAVE_ROUND, "leave", pids=(3,)),
            ChurnEvent(REJOIN_ROUND, "join", pids=(3,)),
            ChurnEvent(PARTITION_ROUND, "partition", groups=(half, rest)),
            ChurnEvent(HEAL_ROUND, "heal"),
        )
    )


def one_run(family: str, seed: int):
    topology = make_topology(family, N, seed)
    deadline = HEAL_ROUND + topology.diameter()
    plan = FaultPlan(
        initial_corruption=RandomCorruption(
            seed=sweep_seed("UNISON-CHURN", f"{family}:initial", seed)
        ),
        mid_corruptions={
            CORRUPTION_ROUND: RandomCorruption(
                seed=sweep_seed("UNISON-CHURN", f"{family}:mid", seed)
            )
        },
        churn=churn_schedule(),
    )
    result = run_sync(
        MinUnison(),
        n=N,
        rounds=deadline + 4,
        fault_plan=plan,
        topology=topology,
    )
    return result, topology, deadline


def _measure(task: Tuple[str, int]):
    family, seed = task
    result, topology, deadline = one_run(family, seed)
    return last_disagreement(result.history), deadline, topology.diameter()


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(2 if fast else 5)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="UNISON-CHURN",
        title="Unison recovery under leave/rejoin + corrupted partition churn",
        claim="after the last churn event the graph re-agrees within a diameter",
        headers=["family", "n", "diameter", "seeds", "worst recovery round", "deadline"],
    )
    tasks = [(family, seed) for family in FAMILIES for seed in seeds]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="UNISON-CHURN")))
    for family in FAMILIES:
        rows = [outcomes[(family, seed)] for seed in seeds]
        worst = max(last for last, _deadline, _diam in rows)
        deadline = max(d for _last, d, _diam in rows)
        diameters = sorted({diam for _last, _deadline, diam in rows})
        report.add_row(
            family, N, "/".join(str(d) for d in diameters), len(rows), worst, deadline
        )
        expect.check(
            all(last <= dl for last, dl, _diam in rows),
            f"{family}: recovery missed the heal + diameter deadline",
        )
        expect.check(
            all(last >= PARTITION_ROUND for last, _dl, _diam in rows),
            f"{family}: the corrupted partition never forced a disagreement",
        )
    # The exploration target sweeps churn schedules over the same
    # protocol; a budgeted slice must confirm every plan holds.
    from repro.explore.engine import explore

    exploration = explore("unison", budget=24, seed=0, jobs=1, mode="enumerate")
    report.add_row("explore", 6, "3", exploration.examined, 0, "—")
    expect.check(
        not exploration.findings and not exploration.mismatches,
        "explore('unison') surfaced findings on a budgeted slice",
    )
    return ExperimentResult(report=report, failures=expect.failures)
