"""ARRAY-SCALE: the batched engine at population scale.

Two claims, both out of the reference engine's honest reach:

1. **Throughput** — the batched NumPy backend sustains ≥ 50× the
   reference engine's processes/sec at n = 10^4 (the BENCH_ARRAY
   microbenchmark records the committed numbers; this experiment
   re-measures a fast inline sample so the claim is checked wherever
   the experiment runs, and skips the ratio check when NumPy is absent
   — the pure-Python data plane is a correctness fallback, not a
   performance claim).
2. **Diameter law at scale** — min-rule unison started from randomly
   corrupted clocks stabilizes within the graph diameter on ring and
   grid topologies at n = 10^4, where one *seed* of the reference
   engine would cost tens of CI seconds.  The sweep itself runs
   through ``run_sweep(backend="array")``, exercising the batched
   routing, the ``@array`` cache namespace, and the per-backend
   executed counters end to end.

The worker/batch pair here is also the reference implementation of the
``array_batch`` / ``array_eligible`` / ``estimate_cost`` worker
contract documented in ``docs/array.md``.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.array import has_numpy, run_array
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.kernel.faults import FaultPlan
from repro.kernel.topology import GridTopology, RingTopology, Topology
from repro.protocols.unison import MinUnison
from repro.sync.corruption import RandomCorruption
from repro.sync.engine import run_sync
from repro.util.rng import sweep_seed

FAMILIES = ("ring", "grid")

#: Throughput floor for the NumPy data plane vs the reference engine.
FULL_SPEEDUP_FLOOR = 50.0
#: Fast mode runs tiny systems where fixed overheads dominate; the bar
#: only asserts the batched path is not a regression in disguise.
FAST_SPEEDUP_FLOOR = 3.0

Task = Tuple[str, int, int]  # (family, n, seed)


def make_topology(family: str, n: int) -> Topology:
    if family == "ring":
        return RingTopology(n)
    if family == "grid":
        side = int(math.isqrt(n))
        if side * side != n:
            raise ValueError(f"grid family needs a square n, got {n}")
        return GridTopology(side, side)
    raise ValueError(f"unknown topology family {family!r}")


def rounds_for(family: str, n: int) -> int:
    """Diameter plus slack: enough for the law, no scale padding."""
    return make_topology(family, n).diameter() + 10


def _corruption(family: str, n: int, seed: int) -> RandomCorruption:
    return RandomCorruption(
        seed=sweep_seed("ARRAY-SCALE", f"{family}:n={n}:corruption", seed)
    )


def _measure(task: Task) -> Tuple[int, int]:
    """Reference fallback: one (stabilization, diameter) measurement."""
    family, n, seed = task
    topology = make_topology(family, n)
    result = run_sync(
        MinUnison(),
        n=n,
        rounds=rounds_for(family, n),
        corruption=_corruption(family, n, seed),
        topology=topology,
    )
    last = 0
    for rh in result.history:
        clocks = {r.clock_before for r in rh.records if r.clock_before is not None}
        if len(clocks) > 1:
            last = rh.round_no
    return last, topology.diameter()


def _measure_batch(tasks: List[Task]) -> List[Tuple[int, int]]:
    """Batched twin of :func:`_measure`: all seeds of a point per pass.

    Grouping by (family, n) keeps each :func:`run_array` call one
    topology with one lane per seed; ``measure_disagreement`` replaces
    the history scan (same definition: last round whose start-of-round
    live clocks differ), so no history is materialized at n = 10^4+.
    """
    groups = {}
    for index, (family, n, seed) in enumerate(tasks):
        groups.setdefault((family, n), []).append((index, seed))
    outcomes: List[Optional[Tuple[int, int]]] = [None] * len(tasks)
    for (family, n), members in groups.items():
        topology = make_topology(family, n)
        plans = [
            FaultPlan(initial_corruption=_corruption(family, n, seed))
            for _index, seed in members
        ]
        result = run_array(
            MinUnison(),
            n,
            rounds_for(family, n),
            fault_plans=plans,
            topology=topology,
            measure_disagreement=True,
        )
        diameter = topology.diameter()
        for lane, (index, _seed) in enumerate(members):
            last = result.last_disagreement[lane] or 0
            outcomes[index] = (last, diameter)
    return outcomes


def _estimate_cost(task: Task) -> float:
    family, n, _seed = task
    return float(n) * rounds_for(family, n)


_measure.array_batch = _measure_batch
_measure.estimate_cost = _estimate_cost


def measure_throughput(n: int, lanes: int, rounds: int) -> Tuple[float, float]:
    """(array processes/sec, reference processes/sec) at one grid point."""
    topology = make_topology("grid", n)
    plans = [
        FaultPlan(initial_corruption=_corruption("grid", n, seed))
        for seed in range(lanes)
    ]
    start = time.perf_counter()
    run_array(MinUnison(), n, rounds, fault_plans=plans, topology=topology)
    array_pps = n * rounds * lanes / (time.perf_counter() - start)

    reference_rounds = min(rounds, 10)
    start = time.perf_counter()
    run_sync(
        MinUnison(),
        n=n,
        rounds=reference_rounds,
        corruption=_corruption("grid", n, 0),
        topology=topology,
        record_history=False,
    )
    reference_pps = n * reference_rounds / (time.perf_counter() - start)
    return array_pps, reference_pps


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    if fast:
        sizes = {"ring": (400,), "grid": (400,)}
        seeds = range(2)
        bench_n, bench_lanes, bench_rounds = 400, 4, 60
        speedup_floor = FAST_SPEEDUP_FLOOR
    else:
        sizes = {"ring": (10_000,), "grid": (10_000,)}
        seeds = range(3)
        bench_n, bench_lanes, bench_rounds = 10_000, 4, 60
        speedup_floor = FULL_SPEEDUP_FLOOR

    expect = Expectations()
    report = ExperimentReport(
        experiment_id="ARRAY-SCALE",
        title="Batched array engine: unison diameter law at n = 10^4+",
        claim=(
            "the vectorized backend preserves the diameter law four "
            "orders of magnitude past the reference engine, at >= 50x "
            "its throughput"
        ),
        headers=["family", "n", "diameter", "seeds", "worst stabilization"],
    )

    tasks = [
        (family, n, seed)
        for family in FAMILIES
        for n in sizes[family]
        for seed in seeds
    ]
    outcomes = dict(
        zip(tasks, run_sweep(_measure, tasks, jobs, cache="ARRAY-SCALE", backend="array"))
    )
    for family in FAMILIES:
        for n in sizes[family]:
            rows = [outcomes[(family, n, seed)] for seed in seeds]
            worst = max(stab for stab, _diam in rows)
            diameter = rows[0][1]
            report.add_row(family, n, diameter, len(rows), worst)
            expect.check(
                all(stab <= diam for stab, diam in rows),
                f"{family} n={n}: stabilization exceeded the diameter",
            )
            expect.check(
                worst > 0,
                f"{family} n={n}: corruption never produced disagreement "
                "(measurement is vacuous)",
            )

    array_pps, reference_pps = measure_throughput(bench_n, bench_lanes, bench_rounds)
    speedup = array_pps / reference_pps if reference_pps else float("inf")
    report.add_row(
        "throughput",
        bench_n,
        "-",
        bench_lanes,
        f"{array_pps:,.0f} proc/s ({speedup:.0f}x ref)",
    )
    if has_numpy():
        expect.check(
            speedup >= speedup_floor,
            f"array/reference speedup {speedup:.1f}x below the "
            f"{speedup_floor:.0f}x floor at n={bench_n}",
        )

    # The ceiling point: one million processes per lane through the
    # chunked lane executor.  Ring-10^6 has diameter 5x10^5, so the
    # diameter law is out of reach here by construction; the claim is
    # that the run *completes* inside bounded per-round temporaries
    # while disagreement is still live (full mode + NumPy only — the
    # committed memory numbers live in BENCH_ARRAY.json).
    if not fast and has_numpy():
        ceiling_n, ceiling_lanes, ceiling_rounds = 1_000_000, 2, 6
        topology = make_topology("ring", ceiling_n)
        plans = [
            FaultPlan(initial_corruption=_corruption("ring", ceiling_n, seed))
            for seed in range(ceiling_lanes)
        ]
        start = time.perf_counter()
        ceiling = run_array(
            MinUnison(),
            ceiling_n,
            ceiling_rounds,
            fault_plans=plans,
            topology=topology,
            measure_disagreement=True,
            chunk=1 << 14,
        )
        ceiling_pps = (
            ceiling_n * ceiling_rounds * ceiling_lanes
            / (time.perf_counter() - start)
        )
        report.add_row(
            "ceiling/ring (chunked)",
            ceiling_n,
            topology.diameter(),
            ceiling_lanes,
            f"{ceiling_pps:,.0f} proc/s",
        )
        expect.check(
            all(
                (ceiling.last_disagreement[lane] or 0) > 0
                for lane in range(ceiling_lanes)
            ),
            "ceiling run at n=10^6 measured no disagreement "
            "(corruption did not register; measurement is vacuous)",
        )
    return ExperimentResult(report=report, failures=expect.failures)
