"""THM4: measured compiled-protocol stabilization vs final_round."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.core.compiler import compile_protocol
from repro.core.problems import RepeatedConsensusProblem
from repro.core.solvability import ftss_check
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.protocols.floodmin import FloodMinConsensus
from repro.sync.adversary import FaultMode, RandomAdversary
from repro.sync.corruption import RandomCorruption
from repro.sync.engine import run_sync
from repro.util.rng import sweep_seed

N = 6


def compiled_history(pi, plus, seed):
    point = f"f={pi.f}"
    adversary = RandomAdversary(
        n=N,
        f=pi.f,
        mode=FaultMode.CRASH,
        rate=0.15,
        seed=sweep_seed("THM4", f"{point}:adversary", seed),
    )
    return run_sync(
        plus,
        n=N,
        rounds=14 * pi.final_round,
        adversary=adversary,
        corruption=RandomCorruption(
            seed=sweep_seed("THM4", f"{point}:corruption", seed)
        ),
    ).history


def smallest_passing_grace(history, sigma, limit):
    for grace in range(0, limit + 1):
        if ftss_check(history, sigma, grace).holds:
            return grace
    return None


def _measure(task: Tuple[int, int]):
    f, seed = task
    pi = FloodMinConsensus(f=f, proposals=[3, 1, 4, 1, 5, 9])
    plus = compile_protocol(pi)
    props = frozenset(pi.proposal_for(p) for p in range(N))
    sigma = RepeatedConsensusProblem(pi.final_round, valid_proposals=props)
    limit = 3 * pi.final_round
    return smallest_passing_grace(compiled_history(pi, plus, seed), sigma, limit)


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(3 if fast else 8)
    budgets = [1, 2] if fast else [1, 2, 3]
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="THM4",
        title=f"Compiled FloodMin stabilization, n={N}, fault-budget sweep",
        claim="stabilization final_round (Thm 4); suspect corruption may "
        "add up to final_round more (§2.4)",
        headers=["f", "final_round", "graces (min/median/max)", "within 2*final_round"],
    )
    tasks = [(f, seed) for f in budgets for seed in seeds]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="THM4")))
    for f in budgets:
        pi = FloodMinConsensus(f=f, proposals=[3, 1, 4, 1, 5, 9])
        limit = 3 * pi.final_round
        graces = []
        for seed in seeds:
            grace = outcomes[(f, seed)]
            if not expect.check(
                grace is not None, f"f={f} seed={seed}: no grace up to {limit} passes"
            ):
                continue
            graces.append(grace)
        if not graces:
            continue
        graces.sort()
        report.add_row(
            f,
            pi.final_round,
            f"{graces[0]}/{graces[len(graces) // 2]}/{graces[-1]}",
            max(graces) <= 2 * pi.final_round,
        )
        expect.check(
            max(graces) <= 2 * pi.final_round,
            f"f={f}: worst grace {max(graces)} exceeds 2*final_round",
        )
    return ExperimentResult(report=report, failures=expect.failures)
