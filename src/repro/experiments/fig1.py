"""FIG1: round agreement (Figure 1) under corruption and omission."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.analysis.stabilization import empirical_stabilization
from repro.core.problems import ClockAgreementProblem
from repro.core.rounds import RoundAgreementProtocol
from repro.core.solvability import ftss_check
from repro.experiments.base import Expectations, ExperimentResult
from repro.sync.adversary import FaultMode, RandomAdversary
from repro.sync.corruption import RandomCorruption
from repro.sync.engine import run_sync

SIGMA = ClockAgreementProblem()
POINTS = [(3, 1), (6, 2), (10, 3), (16, 5)]


def one_run(n: int, f: int, seed: int, rounds: int = 40):
    adversary = RandomAdversary(
        n=n, f=f, mode=FaultMode.GENERAL_OMISSION, rate=0.4, seed=seed
    )
    return run_sync(
        RoundAgreementProtocol(),
        n=n,
        rounds=rounds,
        adversary=adversary,
        corruption=RandomCorruption(seed=seed + 1000),
    )


def run(fast: bool = False) -> ExperimentResult:
    seeds = range(3 if fast else 8)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="FIG1",
        title="Round agreement: n/f sweep, general omission + corruption",
        claim="ftss-solves clock agreement with stabilization time 1 (Thm 3)",
        headers=["n", "f", "seeds", "ftss@1 holds", "max measured stabilization"],
    )
    for n, f in POINTS:
        holds, measured = 0, []
        for seed in seeds:
            res = one_run(n, f, seed)
            if ftss_check(res.history, SIGMA, stabilization_time=1).holds:
                holds += 1
            value = empirical_stabilization(res.history, SIGMA)
            if value is not None:
                measured.append(value)
        worst = max(measured) if measured else None
        report.add_row(n, f, len(seeds), f"{holds}/{len(seeds)}", worst)
        expect.check(holds == len(seeds), f"n={n}: ftss@1 failed on some seed")
        expect.check(
            worst is not None and worst <= 1,
            f"n={n}: measured stabilization {worst} exceeds the Thm 3 bound",
        )
    return ExperimentResult(report=report, failures=expect.failures)
