"""FIG1: round agreement (Figure 1) under corruption and omission."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.analysis.stabilization import empirical_stabilization
from repro.core.problems import ClockAgreementProblem
from repro.core.rounds import RoundAgreementProtocol
from repro.core.solvability import ftss_check
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.sync.adversary import FaultMode, RandomAdversary
from repro.sync.corruption import RandomCorruption
from repro.sync.engine import run_sync
from repro.util.rng import sweep_seed

SIGMA = ClockAgreementProblem()
POINTS = [(3, 1), (6, 2), (10, 3), (16, 5)]


def one_run(n: int, f: int, seed: int, rounds: int = 40):
    point = f"n={n},f={f}"
    adversary = RandomAdversary(
        n=n,
        f=f,
        mode=FaultMode.GENERAL_OMISSION,
        rate=0.4,
        seed=sweep_seed("FIG1", f"{point}:adversary", seed),
    )
    return run_sync(
        RoundAgreementProtocol(),
        n=n,
        rounds=rounds,
        adversary=adversary,
        corruption=RandomCorruption(
            seed=sweep_seed("FIG1", f"{point}:corruption", seed)
        ),
    )


def _measure(task: Tuple[int, int, int]):
    n, f, seed = task
    res = one_run(n, f, seed)
    holds = ftss_check(res.history, SIGMA, stabilization_time=1).holds
    return holds, empirical_stabilization(res.history, SIGMA)


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(3 if fast else 8)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="FIG1",
        title="Round agreement: n/f sweep, general omission + corruption",
        claim="ftss-solves clock agreement with stabilization time 1 (Thm 3)",
        headers=["n", "f", "seeds", "ftss@1 holds", "max measured stabilization"],
    )
    tasks = [(n, f, seed) for n, f in POINTS for seed in seeds]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="FIG1")))
    for n, f in POINTS:
        holds, measured = 0, []
        for seed in seeds:
            ok, value = outcomes[(n, f, seed)]
            holds += ok
            if value is not None:
                measured.append(value)
        worst = max(measured) if measured else None
        report.add_row(n, f, len(seeds), f"{holds}/{len(seeds)}", worst)
        expect.check(holds == len(seeds), f"n={n}: ftss@1 failed on some seed")
        expect.check(
            worst is not None and worst <= 1,
            f"n={n}: measured stabilization {worst} exceeds the Thm 3 bound",
        )
    return ExperimentResult(report=report, failures=expect.failures)
