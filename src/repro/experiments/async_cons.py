"""ASYNC-CONS: self-stabilizing vs plain Chandra-Toueg consensus."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.asyncnet.oracle import WeakDetectorOracle
from repro.asyncnet.scheduler import AsyncScheduler
from repro.detectors.consensus import CTConsensus, consensus_log_agreement
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.sync.corruption import RandomCorruption
from repro.util.rng import sweep_seed

MAX_TIME = 300.0
N = 5


def one_run(mode: str, seed: int, corrupt: bool, gst: float = 10.0):
    crashes = {N - 1: 60.0}
    oracle = WeakDetectorOracle(N, crashes, gst=gst, seed=seed)
    proto = CTConsensus(N, mode=mode)
    corruption = None
    if corrupt:
        corruption = RandomCorruption(
            seed=sweep_seed("ASYNC-CONS", f"{mode}:corruption", seed)
        )
    sched = AsyncScheduler(
        proto,
        N,
        seed=seed,
        gst=gst,
        crash_times=crashes,
        oracle=oracle,
        corruption=corruption,
        sample_interval=5.0,
    )
    return sched.run(max_time=MAX_TIME)


def _measure(task: Tuple[str, bool, int]):
    mode, corrupt, seed = task
    trace = one_run(mode, seed, corrupt)
    verdict = consensus_log_agreement(trace)
    return verdict.holds, verdict.instances_checked, trace.messages_sent


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(2 if fast else 5)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="ASYNC-CONS",
        title=f"Repeated consensus with ◇S, n={N}, 1 crash",
        claim="SS-CT solves repeated consensus from any initial state; "
        "plain CT deadlocks or corrupts from bad states (Section 3)",
        headers=["mode", "start", "holds", "median instances", "median msgs"],
    )
    tasks = [
        (mode, corrupt, seed)
        for mode in ("plain", "ss")
        for corrupt in (False, True)
        for seed in seeds
    ]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="ASYNC-CONS")))
    for mode in ("plain", "ss"):
        for corrupt in (False, True):
            holds, instances, msgs = 0, [], []
            for seed in seeds:
                ok, checked, sent = outcomes[(mode, corrupt, seed)]
                holds += ok
                instances.append(checked)
                msgs.append(sent)
            instances.sort()
            msgs.sort()
            label = "corrupted" if corrupt else "clean"
            report.add_row(
                mode,
                label,
                f"{holds}/{len(seeds)}",
                instances[len(instances) // 2],
                msgs[len(msgs) // 2],
            )
            if mode == "ss" or not corrupt:
                expect.check(holds == len(seeds), f"{mode}/{label}: failed")
            else:
                expect.check(
                    holds < len(seeds),
                    "plain CT unexpectedly survived corruption on every seed",
                )
    return ExperimentResult(report=report, failures=expect.failures)
