"""EXT-BOUNDED: bounded round counters, refutation vs window regime."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.core.bounded import bounded_refutation_sweep
from repro.experiments.base import Expectations, ExperimentResult, run_sweep


def _measure(task: Tuple[int, int]):
    modulus, trials = task
    full = bounded_refutation_sweep(modulus, 1, trials=trials, rounds=20)
    windowed = bounded_refutation_sweep(
        modulus,
        1,
        trials=trials,
        rounds=20,
        corruption_window=max(2, modulus // 8),
    )
    return (
        full.refutations,
        full.trials,
        full.refuted,
        windowed.refutations,
        windowed.trials,
        windowed.refuted,
    )


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    moduli = [8, 64] if fast else [8, 64, 1024, 1 << 16]
    trials = 15 if fast else 30
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="EXT-BOUNDED",
        title="Bounded round counters: refutations of ftss@1 vs modulus",
        claim="no bounded counter survives arbitrary corruption (deferred "
        "impossibility, §2.4); corruption within a half-ring window is safe",
        headers=["modulus", "full-ring refutations", "windowed (M/8) refutations"],
    )
    tasks = [(modulus, trials) for modulus in moduli]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="EXT-BOUNDED")))
    for modulus in moduli:
        full_refs, full_trials, full_refuted, win_refs, win_trials, win_refuted = (
            outcomes[(modulus, trials)]
        )
        report.add_row(
            modulus,
            f"{full_refs}/{full_trials}",
            f"{win_refs}/{win_trials}",
        )
        expect.check(full_refuted, f"M={modulus}: full-ring corruption survived")
        expect.check(not win_refuted, f"M={modulus}: windowed corruption refuted")
    return ExperimentResult(report=report, failures=expect.failures)
