"""EXT-BOUNDED: bounded round counters, refutation vs window regime."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.core.bounded import bounded_refutation_sweep
from repro.experiments.base import Expectations, ExperimentResult


def run(fast: bool = False) -> ExperimentResult:
    moduli = [8, 64] if fast else [8, 64, 1024, 1 << 16]
    trials = 15 if fast else 30
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="EXT-BOUNDED",
        title="Bounded round counters: refutations of ftss@1 vs modulus",
        claim="no bounded counter survives arbitrary corruption (deferred "
        "impossibility, §2.4); corruption within a half-ring window is safe",
        headers=["modulus", "full-ring refutations", "windowed (M/8) refutations"],
    )
    for modulus in moduli:
        full = bounded_refutation_sweep(modulus, 1, trials=trials, rounds=20)
        windowed = bounded_refutation_sweep(
            modulus,
            1,
            trials=trials,
            rounds=20,
            corruption_window=max(2, modulus // 8),
        )
        report.add_row(
            modulus,
            f"{full.refutations}/{full.trials}",
            f"{windowed.refutations}/{windowed.trials}",
        )
        expect.check(full.refuted, f"M={modulus}: full-ring corruption survived")
        expect.check(
            not windowed.refuted, f"M={modulus}: windowed corruption refuted"
        )
    return ExperimentResult(report=report, failures=expect.failures)
