"""FIG2: the canonical Π baselines (Figure 2), clean vs corrupted."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.core.canonical import CanonicalRunner, run_ft
from repro.core.problems import ConsensusProblem
from repro.core.solvability import ft_check
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.protocols.floodmin import FloodMinConsensus
from repro.protocols.phaseking import PhaseQueenConsensus
from repro.sync.adversary import FaultMode, RandomAdversary
from repro.sync.corruption import RandomCorruption
from repro.sync.engine import run_sync
from repro.util.rng import sweep_seed

SIGMA = ConsensusProblem(
    decision_of=lambda s: s["inner"].get("decision"),
    proposal_of=lambda s: s["inner"].get("proposal"),
)


def cases():
    return [
        (FloodMinConsensus(f=2, proposals=[3, 1, 4, 1, 5]), 5, FaultMode.CRASH),
        (
            PhaseQueenConsensus(f=2, n=9, proposals=[0, 1, 1, 0, 1, 0, 0, 1, 1]),
            9,
            FaultMode.GENERAL_OMISSION,
        ),
    ]


def _measure(task: Tuple[int, int]):
    index, seed = task
    pi, n, mode = cases()[index]
    adversary = RandomAdversary(
        n=n,
        f=pi.f,
        mode=mode,
        rate=0.5,
        seed=sweep_seed("FIG2", f"{pi.name}:adversary", seed),
    )
    res = run_ft(pi, n=n, adversary=adversary)
    clean_ok = ft_check(res.history, SIGMA).holds
    corrupted = run_sync(
        CanonicalRunner(pi),
        n=n,
        rounds=pi.final_round + 1,
        corruption=RandomCorruption(
            seed=sweep_seed("FIG2", f"{pi.name}:corruption", seed)
        ),
    )
    return clean_ok, ft_check(corrupted.history, SIGMA).holds


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(4 if fast else 10)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="FIG2",
        title="Canonical Π baselines, clean vs corrupted starts",
        claim="Π ft-solves Σ from the good state; terminating Π is "
        "defenceless against systemic failures [KP90]",
        headers=["protocol", "fault mode", "clean ft-solves", "corrupted survives"],
    )
    all_cases = cases()
    tasks = [(index, seed) for index in range(len(all_cases)) for seed in seeds]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="FIG2")))
    for index, (pi, _n, mode) in enumerate(all_cases):
        clean_ok = sum(outcomes[(index, seed)][0] for seed in seeds)
        corrupted_ok = sum(outcomes[(index, seed)][1] for seed in seeds)
        report.add_row(
            pi.name, mode.value, f"{clean_ok}/{len(seeds)}", f"{corrupted_ok}/{len(seeds)}"
        )
        expect.check(clean_ok == len(seeds), f"{pi.name}: clean baseline failed")
        expect.check(
            corrupted_ok < len(seeds),
            f"{pi.name}: corrupted terminating run unexpectedly met the spec "
            f"on every seed",
        )
    return ExperimentResult(report=report, failures=expect.failures)
