"""EXPLORE: the adversarial engine agrees with the paper on every target.

One budgeted exploration per target (see :mod:`repro.explore.targets`):
the possibility results (Fig 1/3/4 under Theorems 3/4/5) must survive
every fault plan in their spaces, while the impossibility scenarios
(Theorems 1/2) must yield confirmed, shrinkable violations.  The
streaming filter and the definition-grade confirm path must never
disagree.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.report import ExperimentReport
from repro.experiments.base import Expectations, ExperimentResult

#: (target, full budget, fast budget)
_BUDGETS = [
    ("fig1", 48, 16),
    ("fig3", 32, 12),
    ("fig4", 6, 2),
    ("thm1", 96, 40),
    ("thm2", 40, 27),
]


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    # Imported here: repro.explore's engine depends on the experiment
    # sweep pool, so a module-level import would be circular.
    from repro.explore.engine import explore
    from repro.explore.shrink import spec_size
    from repro.explore.targets import get_target

    expect = Expectations()
    report = ExperimentReport(
        experiment_id="EXPLORE",
        title="Adversarial exploration across the paper's fault-plan spaces",
        claim="the engine confirms Thm 3/4/5 hold across their spaces and "
        "finds + shrinks counterexamples for Thm 1/2",
        headers=[
            "target",
            "mode",
            "examined",
            "flagged",
            "confirmed",
            "mismatches",
            "expectation met",
        ],
    )
    for name, budget, fast_budget in _BUDGETS:
        target = get_target(name)
        result = explore(
            name,
            budget=fast_budget if fast else budget,
            jobs=jobs,
            space=target.smoke_space if (fast and target.smoke_space) else None,
        )
        if target.expect_violation:
            met = bool(result.findings)
            expect.check(met, f"{name}: no violation found (impossibility target)")
            for finding in result.findings:
                expect.check(
                    spec_size(finding.minimal) <= spec_size(finding.original),
                    f"{name}: shrinker grew a counterexample",
                )
        else:
            met = not result.findings
            expect.check(
                met,
                f"{name}: {result.violation_count} confirmed violation(s) "
                "in a space the paper proves safe",
            )
        expect.check(
            not result.mismatches,
            f"{name}: streaming/confirm disagreement on "
            f"{len(result.mismatches)} spec(s)",
        )
        report.add_row(
            name,
            result.mode,
            result.examined,
            len(result.flagged),
            result.violation_count,
            len(result.mismatches),
            met,
        )
    return ExperimentResult(report=report, failures=expect.failures)
