"""VERIFY: the proof plane's verdicts match the paper on every target.

One exhaustive explicit-state verification per verify target (see
:mod:`repro.verify.targets`): the possibility results (Fig 1/3 under
Theorems 3/4, MinUnison) must be *proved* — zero violations over the
entire curated space — while the impossibility scenarios (Theorems
1/2) must be *refuted* with a counterexample that replays through the
definition-grade confirm path.  The streaming checker and the confirm
oracle must never disagree, and canonical-form symmetry dedup must do
real work on the symmetric targets.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.report import ExperimentReport
from repro.experiments.base import Expectations, ExperimentResult

#: (target, use the smoke space in fast mode).  Only fig1 has a curated
#: smoke space; the other spaces are small enough to exhaust always.
_TARGETS = [
    ("fig1", True),
    ("fig3", False),
    ("unison", False),
    ("thm1", False),
    ("thm2", False),
]


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    # Imported here: the verify plane depends on the experiment sweep
    # pool, so a module-level import would be circular.
    from repro.verify import verify
    from repro.verify.targets import confirm_verdict, get_verify_target

    expect = Expectations()
    report = ExperimentReport(
        experiment_id="VERIFY",
        title="Bounded verification over entire fault-plan spaces",
        claim="the explicit engine proves Thm 3/4 + unison spaces violation-"
        "free and refutes Thm 1/2 with replayable counterexamples",
        headers=[
            "target",
            "verdict",
            "examined",
            "sym dropped",
            "violating",
            "distinct states",
            "expectation met",
        ],
    )
    for name, has_smoke in _TARGETS:
        target = get_verify_target(name)
        space = target.smoke_space if (fast and has_smoke) else None
        result = verify(name, space=space, jobs=jobs)
        met = result.verdict == target.expect
        expect.check(
            met,
            f"{name}: expected {target.expect!r}, got {result.verdict!r}",
        )
        expect.check(
            not result.mismatches,
            f"{name}: streaming/confirm disagreement on "
            f"{len(result.mismatches)} plan(s)",
        )
        if target.symmetric:
            expect.check(
                result.symmetry_dropped > 0,
                f"{name}: symmetric target but canonical dedup dropped nothing",
            )
        if result.refuted:
            rerun = confirm_verdict(target, result.at, result.counterexample)
            stored = result.counterexample_verdict
            expect.check(
                stored is not None
                and rerun.holds == stored.holds
                and tuple(rerun.violations) == tuple(stored.violations),
                f"{name}: counterexample did not replay to the same verdict",
            )
        frontier = result.frontier
        report.add_row(
            name,
            result.verdict,
            result.examined,
            result.symmetry_dropped,
            result.violating,
            frontier.states_distinct if frontier is not None else 0,
            met,
        )
    return ExperimentResult(report=report, failures=expect.failures)
