"""The experiment registry: every figure, theorem, and extension.

Each module reproduces one entry of DESIGN.md's experiment index and
checks the paper's claim itself (see :mod:`repro.experiments.base`).
Run them:

- programmatically::

      from repro.experiments import REGISTRY
      result = REGISTRY.run("FIG1")
      print(result.render())

- from the command line::

      python -m repro.experiments             # everything
      python -m repro.experiments FIG1 THM4   # a selection
      python -m repro.experiments --fast      # smoke settings
      python -m repro.experiments --list

- or through the pytest-benchmark harness (``pytest benchmarks/
  --benchmark-only``), which adds wall-clock timing on top.
"""

from repro.experiments import (
    abl_merge,
    abl_retx,
    abl_suspect,
    array_scale,
    array_twins,
    async_cons,
    ext_bounded,
    ext_byz,
    ext_early,
    ext_heartbeat,
    explore_ev,
    ext_rsm,
    ext_skew,
    fig1,
    fig2,
    fig3,
    fig4,
    net_live,
    thm1,
    thm2,
    thm3,
    thm4,
    thm5,
    unison,
    unison_churn,
    verify_ev,
)
from repro.experiments.base import Expectations, ExperimentResult, Registry

REGISTRY = Registry()
for _id, _module in [
    ("FIG1", fig1),
    ("FIG2", fig2),
    ("FIG3", fig3),
    ("FIG4", fig4),
    ("THM1", thm1),
    ("THM2", thm2),
    ("THM3", thm3),
    ("THM4", thm4),
    ("THM5", thm5),
    ("ASYNC-CONS", async_cons),
    ("ABL-SUSPECT", abl_suspect),
    ("ABL-RETX", abl_retx),
    ("ABL-MERGE", abl_merge),
    ("EXT-BOUNDED", ext_bounded),
    ("EXT-BYZ", ext_byz),
    ("EXT-EARLY", ext_early),
    ("EXT-HEARTBEAT", ext_heartbeat),
    ("EXT-SKEW", ext_skew),
    ("EXT-RSM", ext_rsm),
    ("EXPLORE", explore_ev),
    ("VERIFY", verify_ev),
    ("NET-LIVE", net_live),
    ("UNISON", unison),
    ("UNISON-CHURN", unison_churn),
    ("ARRAY-SCALE", array_scale),
    ("ARRAY-TWINS", array_twins),
]:
    REGISTRY.add(_id, _module.run)

__all__ = ["REGISTRY", "ExperimentResult", "Expectations", "Registry"]
