"""THM3: measured stabilization of round agreement vs the bound of 1."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.analysis.stabilization import empirical_stabilization
from repro.core.problems import ClockAgreementProblem
from repro.core.rounds import RoundAgreementProtocol
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.sync.adversary import FaultMode, RandomAdversary
from repro.sync.corruption import ClockSkewCorruption
from repro.sync.engine import run_sync
from repro.util.rng import sweep_seed
from repro.workloads.scenarios import clock_skew_pattern

SIGMA = ClockAgreementProblem()
N, F = 6, 2


def one_run(magnitude: int, mode: FaultMode, seed: int):
    point = f"mag=2^{magnitude.bit_length() - 1},mode={mode.value}"
    skews = clock_skew_pattern(
        N, seed=sweep_seed("THM3", f"{point}:skews", seed), magnitude=magnitude
    )
    adversary = RandomAdversary(
        n=N,
        f=F,
        mode=mode,
        rate=0.4,
        seed=sweep_seed("THM3", f"{point}:adversary", seed),
    )
    return run_sync(
        RoundAgreementProtocol(),
        n=N,
        rounds=36,
        adversary=adversary,
        corruption=ClockSkewCorruption(skews),
    )


def _measure(task: Tuple[int, FaultMode, int]):
    magnitude, mode, seed = task
    return empirical_stabilization(one_run(magnitude, mode, seed).history, SIGMA)


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(4 if fast else 10)
    magnitudes = [1 << 4, 1 << 40] if fast else [1 << 4, 1 << 20, 1 << 40]
    modes = (FaultMode.CRASH, FaultMode.GENERAL_OMISSION)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="THM3",
        title=f"Round agreement stabilization, n={N}, f={F}",
        claim="stabilization time 1 round, regardless of corruption "
        "magnitude (Thm 3)",
        headers=["corruption magnitude", "fault mode", "measured max", "refutations"],
    )
    tasks = [
        (magnitude, mode, seed)
        for magnitude in magnitudes
        for mode in modes
        for seed in seeds
    ]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="THM3")))
    for magnitude in magnitudes:
        for mode in modes:
            measured, refuted = [], 0
            for seed in seeds:
                value = outcomes[(magnitude, mode, seed)]
                if value is None:
                    refuted += 1
                else:
                    measured.append(value)
            worst = max(measured) if measured else None
            report.add_row(
                f"2^{magnitude.bit_length() - 1}", mode.value, worst, refuted
            )
            expect.check(refuted == 0, f"{mode.value}@2^{magnitude.bit_length()-1}: refuted")
            expect.check(
                worst is not None and worst <= 1,
                f"{mode.value}: measured stabilization {worst} > 1",
            )
    return ExperimentResult(report=report, failures=expect.failures)
