"""ABL-MERGE: the merge rule — symmetry finding plus monotonicity."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.core.problems import ClockAgreementProblem
from repro.core.rounds import (
    FreeRunningRoundProtocol,
    MinMergeRoundProtocol,
    RoundAgreementProtocol,
)
from repro.core.solvability import ftss_check
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.sync.adversary import (
    FaultMode,
    RandomAdversary,
    RoundFaultPlan,
    ScriptedAdversary,
)
from repro.sync.corruption import ClockSkewCorruption, RandomCorruption
from repro.sync.engine import run_sync
from repro.util.rng import sweep_seed

SIGMA = ClockAgreementProblem()
N, F, ROUNDS = 5, 2, 25

_PROTOCOLS = {
    cls().name: cls
    for cls in (
        RoundAgreementProtocol,
        MinMergeRoundProtocol,
        FreeRunningRoundProtocol,
    )
}


def random_run(protocol, seed: int):
    point = protocol.name
    adversary = RandomAdversary(
        n=N,
        f=F,
        mode=FaultMode.GENERAL_OMISSION,
        rate=0.5,
        seed=sweep_seed("ABL-MERGE", f"{point}:adversary", seed),
    )
    return run_sync(
        protocol,
        n=N,
        rounds=ROUNDS,
        adversary=adversary,
        corruption=RandomCorruption(
            seed=sweep_seed("ABL-MERGE", f"{point}:corruption", seed)
        ),
    )


def drag_run(protocol):
    everyone = frozenset(range(3))
    script = {
        r: RoundFaultPlan(
            receive_omissions={2: everyone - {2}},
            send_omissions={2: everyone - {0, 2}},
        )
        for r in range(1, 21)
    }
    return run_sync(
        protocol,
        n=3,
        rounds=20,
        adversary=ScriptedAdversary(f=1, script=script),
        corruption=ClockSkewCorruption({0: 50, 1: 50, 2: 1}),
    )


def clock_monotone(history) -> bool:
    for pid in history.processes:
        previous = None
        for r in range(history.first_round, history.last_round + 1):
            clock = history.clock(pid, r)
            if clock is None:
                break
            if previous is not None and clock < previous:
                return False
            previous = clock
    return True


def _measure(task: Tuple[str, int]):
    name, seed = task
    history = random_run(_PROTOCOLS[name](), seed).history
    return ftss_check(history, SIGMA, 1).holds


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(4 if fast else 10)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="ABL-MERGE",
        title=f"Merge-rule comparison, n={N}, f={F}, omission + corruption",
        claim="Figure 1 uses max; finding: min is empirically symmetric "
        "for standalone agreement but sacrifices clock monotonicity; "
        "free-running never re-agrees",
        headers=["rule", "ftss@1 holds", "monotone under drag"],
    )
    names = list(_PROTOCOLS)
    tasks = [(name, seed) for name in names for seed in seeds]
    sweep = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="ABL-MERGE")))
    outcomes = {}
    for name in names:
        holds = sum(sweep[(name, seed)] for seed in seeds)
        monotone = clock_monotone(drag_run(_PROTOCOLS[name]()).history)
        outcomes[name] = (holds, monotone)
        report.add_row(name, f"{holds}/{len(seeds)}", monotone)

    expect.check(
        outcomes["round-agreement"] == (len(seeds), True),
        "Figure 1's max rule failed a sweep or lost monotonicity",
    )
    min_holds, min_monotone = outcomes["round-agreement-min"]
    expect.check(min_holds == len(seeds), "the min-symmetry finding broke")
    expect.check(not min_monotone, "min-merge was unexpectedly monotone")
    free_holds, _ = outcomes["round-free-running"]
    expect.check(free_holds < len(seeds), "free-running unexpectedly re-agreed")
    return ExperimentResult(report=report, failures=expect.failures)
