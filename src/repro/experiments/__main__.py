"""CLI front-end for the experiment registry.

Usage::

    python -m repro.experiments [IDS...] [--fast] [--jobs N] [--no-cache]
                                [--list] [--out DIR]

Runs the requested experiments (all by default), prints each
claim-vs-measured table with its PASS/FAIL verdict, optionally writes
the tables to ``DIR``, and exits non-zero if any claim check failed.
``--no-cache`` forces every simulation to execute instead of answering
from the content-addressed run cache (see :mod:`repro.cache`).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import repro.cache
from repro.experiments import REGISTRY


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper-reproduction experiments.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        metavar="ID",
        help="experiment ids to run (default: all); see --list",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smoke settings: fewer seeds, shorter runs",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per sweep (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the run cache: execute every simulation",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--out",
        metavar="DIR",
        help="also write each table to DIR/<ID>.txt",
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in REGISTRY.ids():
            print(experiment_id)
        return 0

    if args.no_cache:
        repro.cache.disable()

    ids = args.ids or REGISTRY.ids()
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    failures = 0
    for experiment_id in ids:
        started = time.monotonic()
        try:
            result = REGISTRY.run(experiment_id, fast=args.fast, jobs=args.jobs)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        elapsed = time.monotonic() - started
        print()
        print(result.render())
        print(f"({elapsed:.1f}s)")
        if out_dir is not None:
            (out_dir / f"{experiment_id}.txt").write_text(
                result.render() + "\n", encoding="utf-8"
            )
        failures += not result.passed
    print()
    print(f"{len(ids)} experiment(s), {failures} failed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
