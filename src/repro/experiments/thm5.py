"""THM5: ◇S convergence under stale in-flight state, vs the baseline."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.asyncnet.oracle import WeakDetectorOracle
from repro.asyncnet.scheduler import AsyncScheduler
from repro.detectors.properties import eventual_weak_accuracy, strong_completeness
from repro.detectors.strong import LastWriterDetector, StrongDetector
from repro.experiments.base import Expectations, ExperimentResult, run_sweep
from repro.sync.corruption import RandomCorruption
from repro.util.rng import sweep_seed

GST = 40.0
PRE_GST_DELAY = 120.0
MAX_TIME = 350.0
N = 6

_DETECTORS = {
    "StrongDetector": StrongDetector,
    "LastWriterDetector": LastWriterDetector,
}


def one_run(proto_cls, seed: int):
    crashes = {N - 1: 10.0}
    oracle = WeakDetectorOracle(N, crashes, gst=GST, seed=seed, flicker_rate=0.5)
    sched = AsyncScheduler(
        proto_cls(),
        N,
        seed=seed,
        gst=GST,
        crash_times=crashes,
        oracle=oracle,
        corruption=RandomCorruption(
            seed=sweep_seed("THM5", f"{proto_cls.__name__}:corruption", seed)
        ),
        pre_gst_delay_max=PRE_GST_DELAY,
        sample_interval=2.0,
    )
    return sched.run(max_time=MAX_TIME)


def _measure(task: Tuple[str, int]):
    name, seed = task
    trace = one_run(_DETECTORS[name], seed)
    sc = strong_completeness(trace)
    ewa = eventual_weak_accuracy(trace)
    return sc.holds, ewa.holds, ewa.converged_at if ewa.holds else None


def run(fast: bool = False, jobs: Optional[int] = None) -> ExperimentResult:
    seeds = range(3 if fast else 6)
    expect = Expectations()
    report = ExperimentReport(
        experiment_id="THM5",
        title=f"◇S convergence under stale in-flight state, n={N}, "
        f"GST={GST}, pre-GST delays up to {PRE_GST_DELAY}",
        claim="Figure 4 needs no initialization (Thm 5); without version "
        "counters, stale gossip re-infects until it drains",
        headers=["detector", "SC holds", "EWA holds", "median EWA conv.", "max EWA conv."],
    )
    names = list(_DETECTORS)
    tasks = [(name, seed) for name in names for seed in seeds]
    outcomes = dict(zip(tasks, run_sweep(_measure, tasks, jobs, cache="THM5")))
    medians = {}
    for name in names:
        sc_ok = ewa_ok = 0
        ewa_times = []
        for seed in seeds:
            sc_holds, ewa_holds, ewa_at = outcomes[(name, seed)]
            sc_ok += sc_holds
            ewa_ok += ewa_holds
            if ewa_at is not None:
                ewa_times.append(ewa_at)
        ewa_times.sort()
        median = ewa_times[len(ewa_times) // 2] if ewa_times else None
        medians[name] = median
        report.add_row(
            name,
            f"{sc_ok}/{len(seeds)}",
            f"{ewa_ok}/{len(seeds)}",
            f"{median:.0f}" if median else "-",
            f"{max(ewa_times):.0f}" if ewa_times else "-",
        )
        expect.check(
            sc_ok == len(seeds) and ewa_ok == len(seeds),
            f"{name}: a ◇S property failed to converge",
        )
    expect.check(
        medians["StrongDetector"] is not None
        and medians["LastWriterDetector"] is not None
        and medians["StrongDetector"] < medians["LastWriterDetector"],
        "version counters did not beat last-writer on convergence time",
    )
    return ExperimentResult(report=report, failures=expect.failures)
