"""Pluggable communication topologies for all three substrates.

The paper's model (and the seed engine) hard-codes a completely
connected network: a broadcast is one message to every process.  The
related dynamic-unison literature generalizes exactly this layer — the
protocol stays "broadcast my state each round", but *broadcast* comes
to mean "send along my current out-edges".  This module supplies that
edge relation as a first-class object:

- :class:`CompleteTopology` — the default; behaviorally identical to
  the seed engine (engines normalize it away entirely, so complete-
  graph runs stay byte-for-byte what they were).
- :class:`RingTopology`, :class:`TreeTopology`,
  :class:`RandomTopology`, :class:`ExplicitTopology` — static sparse
  graphs with a BFS :meth:`~Topology.diameter`.
- :class:`DynamicTopology` — a base graph whose effective edge set
  varies per round under a :class:`ChurnSchedule` of join / leave /
  partition / heal events (carried in the ``FaultPlan``).

Conventions shared by every substrate:

- ``receivers(pid, round_no)`` returns the destinations of ``pid``'s
  broadcast in that round, in ascending pid order, **always including
  ``pid`` itself** — self-delivery is sacred kernel-wide and survives
  leaves and partitions (a detached process keeps executing against
  its own state; it is *not* faulty).
- Edges are undirected: ``q in receivers(p)`` iff ``p in
  receivers(q)``.
- Round numbers are the sync engine's (1-based); static topologies
  ignore them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.util.rng import make_rng

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "CompleteTopology",
    "DynamicTopology",
    "ExplicitTopology",
    "GridTopology",
    "RandomTopology",
    "RingTopology",
    "Topology",
    "TreeTopology",
    "round_edges",
]


class Topology:
    """Edge relation consulted by every substrate's delivery layer."""

    n: int
    #: True only for the complete graph; lets engines skip topology
    #: work entirely (the invisible-default guarantee).
    complete: bool = False

    def receivers(self, pid: int, round_no: int = 1) -> Sequence[int]:
        """Destinations of ``pid``'s broadcast: ascending, includes ``pid``."""
        raise NotImplementedError

    def neighbors(self, pid: int, round_no: int = 1) -> Tuple[int, ...]:
        """``receivers`` without the self-edge."""
        return tuple(q for q in self.receivers(pid, round_no) if q != pid)

    def diameter(self) -> int:
        """Longest shortest path of the (static / base) graph."""
        raise NotImplementedError

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n:
            raise ValueError(f"pid {pid} out of range for n={self.n}")


class CompleteTopology(Topology):
    """Everyone hears everyone — the seed engine's implicit network."""

    complete = True

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self._receivers = range(n)  # shared, like the engine fast path

    def receivers(self, pid: int, round_no: int = 1) -> Sequence[int]:
        self._check_pid(pid)
        return self._receivers

    def diameter(self) -> int:
        return 1 if self.n > 1 else 0

    def __repr__(self) -> str:
        return f"CompleteTopology(n={self.n})"


class _StaticTopology(Topology):
    """Shared machinery: precomputed receiver tuples + BFS diameter."""

    def __init__(self, n: int, undirected_edges: Iterable[Tuple[int, int]]):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        adjacency: List[set] = [{pid} for pid in range(n)]
        for u, v in undirected_edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._receivers: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(adjacency[pid])) for pid in range(n)
        )
        self._diameter: Optional[int] = None

    def receivers(self, pid: int, round_no: int = 1) -> Sequence[int]:
        self._check_pid(pid)
        return self._receivers[pid]

    def diameter(self) -> int:
        if self._diameter is None:
            worst = 0
            for source in range(self.n):
                dist = {source: 0}
                frontier = [source]
                while frontier:
                    nxt = []
                    for u in frontier:
                        for v in self._receivers[u]:
                            if v not in dist:
                                dist[v] = dist[u] + 1
                                nxt.append(v)
                    frontier = nxt
                if len(dist) < self.n:
                    raise ValueError("graph is disconnected; diameter undefined")
                worst = max(worst, max(dist.values()))
            self._diameter = worst
        return self._diameter


class RingTopology(_StaticTopology):
    """Bidirectional cycle 0–1–…–(n−1)–0; diameter ``n // 2``."""

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("a ring needs n >= 2")
        super().__init__(n, ((pid, (pid + 1) % n) for pid in range(n)))

    def __repr__(self) -> str:
        return f"RingTopology(n={self.n})"


class GridTopology(_StaticTopology):
    """``rows`` × ``cols`` 4-neighbor mesh; diameter rows+cols−2.

    Row-major numbering: process ``r * cols + c`` sits at (r, c).  The
    workhorse sparse graph for diameter-law sweeps — diameter grows as
    Θ(√n) instead of the ring's Θ(n), so stabilization-time laws can be
    separated from size effects at large n.
    """

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("a grid needs rows >= 1 and cols >= 1")
        self.rows = rows
        self.cols = cols

        def mesh_edges():
            for r in range(rows):
                for c in range(cols):
                    pid = r * cols + c
                    if c + 1 < cols:
                        yield (pid, pid + 1)
                    if r + 1 < rows:
                        yield (pid, pid + cols)

        super().__init__(rows * cols, mesh_edges())

    def diameter(self) -> int:
        return self.rows + self.cols - 2

    def __repr__(self) -> str:
        return f"GridTopology(rows={self.rows}, cols={self.cols})"


class TreeTopology(_StaticTopology):
    """Complete ``arity``-ary tree rooted at 0 (heap numbering)."""

    def __init__(self, n: int, arity: int = 2):
        if arity < 1:
            raise ValueError("arity must be >= 1")
        self.arity = arity
        super().__init__(n, (((pid - 1) // arity, pid) for pid in range(1, n)))

    def __repr__(self) -> str:
        return f"TreeTopology(n={self.n}, arity={self.arity})"


class RandomTopology(_StaticTopology):
    """Seeded G(n, p) unioned with a seeded random spanning tree.

    The spanning tree guarantees connectivity (so ``diameter`` is always
    defined and unison always converges); the G(n, p) overlay controls
    density.  Same ``(n, p, seed)`` → same graph, everywhere.
    """

    def __init__(self, n: int, p: float = 0.2, seed: int = 0):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p
        self.seed = seed
        edges = set()
        rng = make_rng(seed, f"gnp:{n}:{p!r}")
        order = list(range(n))
        rng.shuffle(order)
        for i in range(1, n):
            attach = order[rng.randrange(i)]
            edges.add((min(order[i], attach), max(order[i], attach)))
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < p:
                    edges.add((u, v))
        super().__init__(n, sorted(edges))

    def __repr__(self) -> str:
        return f"RandomTopology(n={self.n}, p={self.p}, seed={self.seed})"


class ExplicitTopology(_StaticTopology):
    """An arbitrary undirected edge list, given outright."""

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]]):
        self.edges = tuple(sorted((min(u, v), max(u, v)) for u, v in edges))
        super().__init__(n, self.edges)

    def __repr__(self) -> str:
        return f"ExplicitTopology(n={self.n}, edges={self.edges})"


# ---------------------------------------------------------------------------
# Churn
# ---------------------------------------------------------------------------

_CHURN_KINDS = ("leave", "join", "partition", "heal")


@dataclass(frozen=True)
class ChurnEvent:
    """One topology change, effective from ``round_no`` onward.

    - ``leave``: ``pids`` detach — they keep running (self-delivery
      only) but no edge touches them.  Not a fault: a detached process
      is correct, merely unreachable.
    - ``join``: ``pids`` re-attach.
    - ``partition``: the network splits into ``groups`` (disjoint pid
      sets); edges live only within a group.  Pids in no group form one
      implicit residual group.
    - ``heal``: the partition ends.
    """

    round_no: int
    kind: str
    pids: Tuple[int, ...] = ()
    groups: Tuple[FrozenSet[int], ...] = ()

    def __post_init__(self):
        if self.kind not in _CHURN_KINDS:
            raise ValueError(f"unknown churn kind {self.kind!r}")
        if self.round_no < 1:
            raise ValueError("churn round_no must be >= 1")
        object.__setattr__(self, "pids", tuple(sorted(self.pids)))
        object.__setattr__(
            self, "groups", tuple(frozenset(g) for g in self.groups)
        )
        if self.kind in ("leave", "join") and not self.pids:
            raise ValueError(f"{self.kind} event needs pids")
        if self.kind == "partition":
            seen: set = set()
            for group in self.groups:
                if seen & group:
                    raise ValueError("partition groups must be disjoint")
                seen |= group


@dataclass(frozen=True)
class ChurnSchedule:
    """An ordered script of :class:`ChurnEvent`\\ s (carried in FaultPlan)."""

    events: Tuple[ChurnEvent, ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self,
            "events",
            tuple(sorted(self.events, key=lambda e: e.round_no)),
        )

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def last_round(self) -> int:
        """Round of the final event (0 when empty) — recovery starts after."""
        return self.events[-1].round_no if self.events else 0


class DynamicTopology(Topology):
    """A base graph filtered per round by a :class:`ChurnSchedule`.

    An edge (u, v) of the base graph is live in round r iff neither
    endpoint is detached and both sit in the same partition group at r.
    The self-edge always survives.
    """

    def __init__(self, base: Topology, schedule: ChurnSchedule):
        self.base = base
        self.schedule = schedule
        self.n = base.n
        for event in schedule.events:
            for pid in event.pids:
                base._check_pid(pid)
            for group in event.groups:
                for pid in group:
                    base._check_pid(pid)
        # round -> (detached frozenset, block-of map or None)
        self._states: Dict[int, Tuple[FrozenSet[int], Optional[Dict[int, int]]]] = {}

    def _state(self, round_no: int):
        cached = self._states.get(round_no)
        if cached is not None:
            return cached
        detached: set = set()
        blocks: Optional[Dict[int, int]] = None
        for event in self.schedule.events:
            if event.round_no > round_no:
                break
            if event.kind == "leave":
                detached.update(event.pids)
            elif event.kind == "join":
                detached.difference_update(event.pids)
            elif event.kind == "partition":
                blocks = {}
                for index, group in enumerate(event.groups):
                    for pid in group:
                        blocks[pid] = index
            elif event.kind == "heal":
                blocks = None
        state = (frozenset(detached), blocks)
        self._states[round_no] = state
        return state

    def state_key(self, round_no: int):
        """Equality-comparable churn state at ``round_no``.

        Two rounds with equal keys have identical edge sets; batched
        engines use this to reuse compiled adjacency across rounds.
        """
        return self._state(round_no)

    def receivers(self, pid: int, round_no: int = 1) -> Sequence[int]:
        detached, blocks = self._state(round_no)
        base_receivers = self.base.receivers(pid, round_no)
        if not detached and blocks is None:
            return base_receivers
        if pid in detached:
            return (pid,)
        if blocks is None:
            return tuple(q for q in base_receivers if q == pid or q not in detached)
        my_block = blocks.get(pid, -1)
        return tuple(
            q
            for q in base_receivers
            if q == pid or (q not in detached and blocks.get(q, -1) == my_block)
        )

    def diameter(self) -> int:
        return self.base.diameter()

    def __repr__(self) -> str:
        return f"DynamicTopology({self.base!r}, events={len(self.schedule.events)})"


def round_edges(topology: Topology, round_no: int) -> Tuple[Tuple[int, ...], ...]:
    """The per-pid receiver sets of one round, as narrated/recorded.

    This is the exact value the engines hand to ``Observer.on_topology``
    and recorders attach to ``RoundHistory.edges`` — index p holds p's
    receivers (ascending, self included).
    """
    return tuple(
        tuple(topology.receivers(pid, round_no)) for pid in range(topology.n)
    )
