"""Substrate-independent application + narration of systemic failures.

Every substrate that hosts protocol state — the synchronous engine, the
asynchronous scheduler, and the live network runtime — applies
:class:`~repro.sync.corruption.CorruptionPlan`-shaped plans the same
way: rewrite the states, then narrate one
:class:`~repro.kernel.events.FaultEvent` of kind ``corruption`` for
each process whose memory actually changed.  This helper is that shared
step, so the three substrates cannot drift in how corruption is
diffed or reported.

Narration diffs only the plan's reported candidate pids (see
``CorruptionPlan.touched_pids``) instead of every process's full state;
plans that do not report candidates (duck-typed externals) fall back to
the full O(n x state) diff.  When nothing on the bus listens for fault
events the diff is skipped entirely.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.kernel.events import EventBus, FaultEvent, FaultKind

__all__ = ["apply_corruption"]


def apply_corruption(
    bus: EventBus,
    plan: Any,
    protocol: Any,
    states: Mapping[int, Optional[Dict[str, Any]]],
    n: int,
    time: float,
) -> Dict[int, Optional[Dict[str, Any]]]:
    """Apply one corruption plan and narrate which memories it touched."""
    corrupted = plan.corrupt(protocol, states, n)
    if not bus.wants_fault:
        return corrupted
    candidates = getattr(plan, "touched_pids", lambda s, c: None)(states, n)
    if candidates is None:
        pids = range(n)
    else:
        pids = sorted(pid for pid in candidates if 0 <= pid < n)
    for pid in pids:
        if corrupted.get(pid) != states.get(pid):
            bus.on_fault(FaultEvent(kind=FaultKind.CORRUPTION, time=time, pid=pid))
    return corrupted
