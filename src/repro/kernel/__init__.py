"""The simulation kernel shared by both substrates.

The synchronous lockstep engine (:mod:`repro.sync.engine`) and the
asynchronous discrete-event scheduler (:mod:`repro.asyncnet.scheduler`)
simulate very different system models, but everything *around* the
model is the same job twice: injecting faults, copying process states,
and recording what happened.  This package extracts that common layer:

- :mod:`repro.kernel.faults` — one :class:`FaultPlan` describing a
  fault scenario (crash schedule, omission adversary, systemic
  corruption, asynchrony knobs) that can be aimed at either substrate;
- :mod:`repro.kernel.events` — the observer/event-bus API
  (``on_round_start``, ``on_send``, ``on_deliver``, ``on_fault``,
  ``on_state_commit``, ...) both engines emit instead of doing inline
  history bookkeeping;
- :mod:`repro.kernel.recorders` — the observers that rebuild the
  classic artifacts (:class:`~repro.histories.history.ExecutionHistory`
  and :class:`~repro.asyncnet.scheduler.AsyncTrace`) from the event
  stream;
- :mod:`repro.kernel.snapshot` — the state-snapshot helper both
  engines use instead of blanket ``copy.deepcopy``;
- :mod:`repro.kernel.topology` — the pluggable communication topology
  (complete / ring / tree / random / explicit, plus
  :class:`~repro.kernel.topology.DynamicTopology` driven by churn
  events in the :class:`FaultPlan`) that defines what "broadcast"
  means in every substrate.
"""

from repro.kernel.events import (
    AsyncMessage,
    EventBus,
    FaultEvent,
    FaultKind,
    Observer,
    ServeEvent,
)
from repro.kernel.faults import (
    AsyncFaultView,
    ComposedAdversary,
    CrashScheduleAdversary,
    FaultPlan,
    SyncFaultView,
)
from repro.kernel.recorders import AsyncTraceRecorder, HistoryRecorder
from repro.kernel.snapshot import (
    FrozenDict,
    copy_payload,
    freeze,
    imm,
    snapshot_state,
    snapshot_states,
)
from repro.kernel.topology import (
    ChurnEvent,
    ChurnSchedule,
    CompleteTopology,
    DynamicTopology,
    ExplicitTopology,
    GridTopology,
    RandomTopology,
    RingTopology,
    Topology,
    TreeTopology,
    round_edges,
)

__all__ = [
    "AsyncFaultView",
    "AsyncMessage",
    "AsyncTraceRecorder",
    "ChurnEvent",
    "ChurnSchedule",
    "CompleteTopology",
    "ComposedAdversary",
    "CrashScheduleAdversary",
    "DynamicTopology",
    "EventBus",
    "ExplicitTopology",
    "GridTopology",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FrozenDict",
    "HistoryRecorder",
    "Observer",
    "RandomTopology",
    "RingTopology",
    "ServeEvent",
    "SyncFaultView",
    "Topology",
    "TreeTopology",
    "copy_payload",
    "freeze",
    "imm",
    "round_edges",
    "snapshot_state",
    "snapshot_states",
]
