"""Observers that rebuild the classic run artifacts from the event stream.

The engines used to assemble :class:`ExecutionHistory` /
:class:`AsyncTrace` inline; now they only narrate events and these two
observers do the bookkeeping.  Any other observer on the same bus sees
exactly the information the recorders see — which is the point: the
recorded history is *derived from* the event stream, never privileged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.histories.history import (
    CLOCK_KEY,
    ExecutionHistory,
    ProcessRoundRecord,
    RoundHistory,
)
from repro.kernel.events import FaultEvent, FaultKind, Observer

__all__ = ["AsyncTraceRecorder", "HistoryRecorder"]

ProcessId = int


class HistoryRecorder(Observer):
    """Rebuilds the synchronous :class:`ExecutionHistory` from events.

    Byte-for-byte compatible with the engine's pre-kernel inline
    bookkeeping (property-tested on the FIG1/FIG3 workloads): records
    appear in pid order, sent tuples in emission order, delivered
    tuples in the engine's (sender, sent_round) order, and deviation
    flags exactly as the fault events report them.
    """

    def __init__(self) -> None:
        self._n: Optional[int] = None
        self._rounds: List[RoundHistory] = []
        self._crashed: Set[ProcessId] = set()
        self._round_no: Optional[int] = None
        self._snapshots: Dict[ProcessId, Optional[Dict[str, Any]]] = {}
        self._sent: Dict[ProcessId, list] = {}
        self._delivered: Dict[ProcessId, list] = {}
        self._crashing: Set[ProcessId] = set()
        self._omitted_sends: Dict[ProcessId, frozenset] = {}
        self._omitted_receives: Dict[ProcessId, frozenset] = {}
        self._forged_sends: Dict[ProcessId, frozenset] = {}
        self._edges: Optional[tuple] = None

    def on_run_start(self, n, protocol, first_round=1):
        self._n = n

    def on_round_start(self, round_no, snapshots):
        self._round_no = round_no
        self._snapshots = snapshots
        self._sent = {}
        self._delivered = {}
        self._crashing = set()
        self._omitted_sends = {}
        self._omitted_receives = {}
        self._forged_sends = {}
        self._edges = None

    def on_topology(self, round_no, edges):
        self._edges = tuple(tuple(receivers) for receivers in edges)

    def on_send(self, message, time):
        self._sent.setdefault(message.sender, []).append(message)

    def on_deliver(self, message, time):
        self._delivered.setdefault(message.receiver, []).append(message)

    def on_fault(self, fault: FaultEvent):
        if self._round_no is None:
            return  # initial corruption: not part of any round's records
        if fault.kind == FaultKind.CRASH:
            self._crashing.add(fault.pid)
        elif fault.kind == FaultKind.SEND_OMISSION:
            self._omitted_sends[fault.pid] = frozenset(fault.targets)
        elif fault.kind == FaultKind.RECEIVE_OMISSION:
            self._omitted_receives[fault.pid] = frozenset(fault.targets)
        elif fault.kind == FaultKind.FORGERY:
            self._forged_sends[fault.pid] = frozenset(fault.targets)
        # FaultKind.CORRUPTION: systemic failures are visible in the
        # snapshots themselves; histories carry no separate mark (the
        # paper's faulty set counts process failures only).

    def on_round_end(self, round_no):
        self._rounds.append(self._finish_round(round_no))

    def _finish_round(self, round_no) -> RoundHistory:
        """Assemble this round's records (subclasses may discard them)."""
        records = []
        for pid in range(self._n or 0):
            if pid in self._crashed:
                records.append(
                    ProcessRoundRecord(
                        pid=pid, state_before=None, clock_before=None, crashed=True
                    )
                )
                continue
            snapshot = self._snapshots.get(pid)
            clock_before = None if snapshot is None else snapshot.get(CLOCK_KEY)
            if pid in self._crashing:
                records.append(
                    ProcessRoundRecord(
                        pid=pid,
                        state_before=snapshot,
                        clock_before=clock_before,
                        sent=tuple(self._sent.get(pid, ())),
                        delivered=(),
                        crashed=True,
                    )
                )
                continue
            records.append(
                ProcessRoundRecord(
                    pid=pid,
                    state_before=snapshot,
                    clock_before=clock_before,
                    sent=tuple(self._sent.get(pid, ())),
                    delivered=tuple(self._delivered.get(pid, ())),
                    crashed=False,
                    omitted_sends=self._omitted_sends.get(pid, frozenset()),
                    omitted_receives=self._omitted_receives.get(pid, frozenset()),
                    forged_sends=self._forged_sends.get(pid, frozenset()),
                )
            )
        self._crashed |= self._crashing
        self._round_no = None
        return RoundHistory(
            round_no=round_no, records=tuple(records), edges=self._edges
        )

    def history(self) -> ExecutionHistory:
        """The reconstructed execution history (≥ 1 round required)."""
        return ExecutionHistory(self._rounds)


class AsyncTraceRecorder(Observer):
    """Rebuilds the asynchronous :class:`AsyncTrace` from events."""

    def __init__(self) -> None:
        self._n = 0
        self._samples: List[tuple] = []
        self._crashed: Set[ProcessId] = set()
        self._messages_sent = 0
        self._deliveries = 0
        self._final_states: Dict[ProcessId, Optional[Dict[str, Any]]] = {}
        self._duration = 0.0

    def on_run_start(self, n, protocol, first_round=1):
        self._n = n

    def on_send(self, message, time):
        self._messages_sent += 1

    def on_deliver(self, message, time):
        self._deliveries += 1

    def on_fault(self, fault: FaultEvent):
        if fault.kind == FaultKind.CRASH:
            self._crashed.add(fault.pid)

    def on_sample(self, time, outputs):
        self._samples.append((time, outputs))

    def on_run_end(self, time, final_states):
        self._duration = time
        self._final_states = {
            pid: None if state is None else dict(state)
            for pid, state in final_states.items()
        }

    def trace(self):
        """The reconstructed :class:`~repro.asyncnet.scheduler.AsyncTrace`."""
        from repro.asyncnet.scheduler import AsyncTrace

        return AsyncTrace(
            n=self._n,
            duration=self._duration,
            samples=self._samples,
            final_states=self._final_states,
            crashed=frozenset(self._crashed),
            messages_sent=self._messages_sent,
            deliveries=self._deliveries,
        )
