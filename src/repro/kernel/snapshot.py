"""State snapshots without blanket ``copy.deepcopy`` — with interning.

Both engines must snapshot process states (for ``state_before`` records
and final states) and defensively copy message payloads.  The states in
this library are overwhelmingly flat ``dict``s of immutable values —
ints, strings, tuples of ints, frozensets — for which ``copy.deepcopy``
pays its full recursive-memoization cost to produce what a shallow copy
would.  These helpers walk the value once: deeply-immutable values are
shared (safe — nobody can mutate them), mutable containers are rebuilt
recursively, and anything exotic falls back to ``copy.deepcopy``.

The observable semantics match ``deepcopy`` for simulation purposes:
mutating the original after a snapshot never affects the snapshot.
(The one deliberate difference: aliasing between two *mutable* values
inside one state is not preserved — each reference gets its own copy.
No protocol in the library relies on intra-state aliasing.)

The interning layer
-------------------

Immutability proofs used to be recomputed from scratch on every call —
for full-information protocols (Figure 2's canonical form broadcasts
``(pid, inner state)`` views that grow every round) that walk dominated
the per-round cost.  Three caches remove it:

- a **per-type fast table**: exact types classify once into *always
  immutable* (atoms), *never provable* (mutable/unknown), or
  *structural* (tuples, frozensets, frozen dataclasses,
  :class:`FrozenDict` — immutable iff their contents are);
- a **per-object proof cache** keyed by ``id``: once a structural value
  proves immutable, later calls are O(1).  Entries pin the proven
  object with a strong reference, so a cached ``id`` can never be
  recycled by the allocator while the proof is live; a generation
  counter clears the cache wholesale when it reaches its size bound
  (the *generation guard* — stale ids are impossible because nothing
  survives a generation);
- a **hash-cons table**: equal proven-immutable containers collapse to
  one canonical instance (first one wins), so identical view tuples
  built independently by different processes — or by the same process
  in successive rounds — share structure and future proofs hit the id
  cache immediately.

Protocols with hand-built payloads can opt in explicitly: :func:`imm`
proves (and interns) a payload once so the engine's defensive copy is
O(1) from then on, and :func:`freeze` deep-converts lists/sets/dicts to
their immutable counterparts (:class:`FrozenDict` for mappings) before
interning.
"""

from __future__ import annotations

import copy
import dataclasses
from collections.abc import Mapping as _MappingABC
from typing import Any, Dict, Iterator, Mapping, Optional

__all__ = [
    "FrozenDict",
    "cache_stats",
    "clear_caches",
    "copy_payload",
    "copy_value",
    "freeze",
    "imm",
    "snapshot_state",
    "snapshot_states",
]

_ATOMS = (int, float, complex, bool, str, bytes, type(None))

#: Per-type verdicts (exact-type dispatch; see ``_classify``).
_ALWAYS, _NEVER, _STRUCTURAL = 1, 0, 2

#: Size bound shared by the proof cache and the hash-cons table.  At the
#: bound the caches are cleared wholesale and the generation advances —
#: proofs are re-derived, never left dangling.
_CACHE_LIMIT = 1 << 16


class FrozenDict(_MappingABC):
    """A hashable, immutable mapping (the :func:`freeze` image of ``dict``).

    Equality follows the ``Mapping`` protocol, so ``FrozenDict(d) == d``
    for any equal ``dict``.  Hashing requires every value (and key) to
    be hashable — :func:`freeze` guarantees deep immutability first.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Mapping[Any, Any] = ()):
        object.__setattr__(self, "_items", dict(items))
        object.__setattr__(self, "_hash", None)

    def __getitem__(self, key: Any) -> Any:
        return self._items[key]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(frozenset(self._items.items()))
            )
        return self._hash

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._items!r})"

    def __reduce__(self):
        return (type(self), (self._items,))


_TYPE_TABLE: Dict[type, int] = {atom: _ALWAYS for atom in _ATOMS}
_TYPE_TABLE[tuple] = _STRUCTURAL
_TYPE_TABLE[frozenset] = _STRUCTURAL
_TYPE_TABLE[FrozenDict] = _STRUCTURAL

#: id(value) -> (value, canonical): the strong reference to ``value``
#: pins its id for the lifetime of the entry (see module docstring).
_PROOFS: Dict[int, tuple] = {}
#: value -> canonical instance for hashable proven-immutable containers.
_INTERNED: Dict[Any, Any] = {}
_GENERATION = 0


def _classify(kind: type) -> int:
    """Memoized per-type verdict (exact type, subclass-aware fallback)."""
    verdict = _TYPE_TABLE.get(kind)
    if verdict is not None:
        return verdict
    if issubclass(kind, _ATOMS):
        verdict = _ALWAYS
    elif issubclass(kind, (tuple, frozenset, FrozenDict)):
        verdict = _STRUCTURAL
    elif dataclasses.is_dataclass(kind) and kind.__dataclass_params__.frozen:
        verdict = _STRUCTURAL
    else:
        verdict = _NEVER
    _TYPE_TABLE[kind] = verdict
    return verdict


def _advance_generation() -> None:
    global _GENERATION
    _GENERATION += 1
    _PROOFS.clear()
    _INTERNED.clear()


def _register(value: Any, canonical: Any) -> Any:
    if len(_PROOFS) >= _CACHE_LIMIT:
        _advance_generation()
    _PROOFS[id(value)] = (value, canonical)
    if canonical is not value:
        # Make the canonical instance an O(1) hit as well.
        _PROOFS[id(canonical)] = (canonical, canonical)
    return canonical


def _intern(value: Any) -> Any:
    """The canonical instance equal to a proven-immutable ``value``."""
    if len(_INTERNED) >= _CACHE_LIMIT:
        _advance_generation()
    try:
        return _INTERNED.setdefault(value, value)
    except TypeError:
        # Proven immutable but unhashable (e.g. a frozen dataclass with
        # eq=True, hash disabled): share without hash-consing.
        return value


#: Failure sentinel for ``_prove`` (``None`` is a real provable value).
_MISS = object()


def _prove(value: Any) -> Any:
    """Canonical equal object if deeply immutable, else ``_MISS``."""
    verdict = _TYPE_TABLE.get(type(value))
    if verdict is None:
        verdict = _classify(type(value))
    if verdict == _ALWAYS:
        return value
    if verdict == _NEVER:
        return _MISS
    cached = _PROOFS.get(id(value))
    if cached is not None:
        return cached[1]
    if isinstance(value, (tuple, frozenset)):
        for item in value:
            if _prove(item) is _MISS:
                return _MISS
    elif isinstance(value, FrozenDict):
        for key, item in value.items():
            if _prove(key) is _MISS or _prove(item) is _MISS:
                return _MISS
    else:  # frozen dataclass
        for field in dataclasses.fields(value):
            if _prove(getattr(value, field.name)) is _MISS:
                return _MISS
    return _register(value, _intern(value))


def _is_deeply_immutable(value: Any) -> bool:
    return _prove(value) is not _MISS


def clear_caches() -> None:
    """Drop every memoized proof and interned instance (tests, tooling)."""
    _advance_generation()


def cache_stats() -> Dict[str, int]:
    """Introspection for tests and the microbenchmarks."""
    return {
        "proofs": len(_PROOFS),
        "interned": len(_INTERNED),
        "generation": _GENERATION,
        "types": len(_TYPE_TABLE),
    }


def imm(value: Any) -> Any:
    """Mark ``value`` pre-proven: prove it immutable once, intern it.

    Protocols that broadcast hand-built immutable payloads call
    ``imm(payload)`` so the engine's defensive :func:`copy_payload`
    becomes an O(1) cache hit.  Raises ``TypeError`` when the value is
    not deeply immutable (use :func:`freeze` to convert).
    """
    canonical = _prove(value)
    if canonical is _MISS:
        raise TypeError(
            f"imm(): {type(value).__name__!r} value is not deeply "
            "immutable; freeze() converts lists/sets/dicts to immutable "
            "equivalents"
        )
    return canonical


def freeze(value: Any) -> Any:
    """Deep-convert to an immutable equivalent and intern it.

    ``list`` → ``tuple``, ``set`` → ``frozenset``, ``dict`` →
    :class:`FrozenDict`; already-immutable values intern as-is.
    Anything unconvertible (arbitrary objects) raises ``TypeError``.
    """
    canonical = _prove(value)
    if canonical is not _MISS:
        return canonical
    kind = type(value)
    if kind is dict:
        return imm(FrozenDict({key: freeze(item) for key, item in value.items()}))
    if kind is list or kind is tuple:
        return imm(tuple(freeze(item) for item in value))
    if kind is set or kind is frozenset:
        return imm(frozenset(freeze(item) for item in value))
    raise TypeError(
        f"freeze(): cannot convert {kind.__name__!r} to an immutable "
        "equivalent"
    )


def copy_value(value: Any) -> Any:
    """A defensive copy of ``value``, sharing immutable substructure."""
    canonical = _prove(value)
    if canonical is not _MISS:
        return canonical
    kind = type(value)
    if kind is dict:
        return {key: copy_value(item) for key, item in value.items()}
    if kind is list:
        return [copy_value(item) for item in value]
    if kind is set:
        return {copy_value(item) for item in value}
    if kind is tuple:
        return tuple(copy_value(item) for item in value)
    if kind is frozenset:
        return frozenset(copy_value(item) for item in value)
    copied = copy.deepcopy(value)
    if copied is value:
        # ``deepcopy`` treats some objects (custom ``__deepcopy__``,
        # ``copyreg``-atomic registrations) as shareable.  For a value we
        # could not prove immutable that would silently alias mutable
        # state across the snapshot boundary — refuse instead.
        raise TypeError(
            f"cannot snapshot {kind.__name__!r}: deepcopy returned the "
            "original object, so the snapshot would share mutable state "
            "with the live process; use immutable state values (or a "
            "frozen dataclass of immutable fields)"
        )
    return copied


def copy_payload(payload: Any) -> Any:
    """Defensive copy of a message payload (immutable fast path)."""
    return copy_value(payload)


def snapshot_state(state: Optional[Mapping[str, Any]]) -> Optional[Dict[str, Any]]:
    """Snapshot one process state (``None`` = crashed, stays ``None``).

    States must be mappings: a ``__slots__``-only or dataclass instance
    used as a whole-process state is rejected with a descriptive error
    (previously it would die on a bare ``AttributeError`` deep in the
    engine, or — for objects with an ``items`` attribute that is not a
    mapping protocol — silently produce garbage).
    """
    if state is None:
        return None
    if not isinstance(state, Mapping):
        raise TypeError(
            f"process state must be a mapping, got {type(state).__name__!r}; "
            "__slots__/dataclass states must expose their fields as a dict "
            "(the engines snapshot key-by-key)"
        )
    return {key: copy_value(item) for key, item in state.items()}


def snapshot_states(
    states: Mapping[int, Optional[Mapping[str, Any]]],
) -> Dict[int, Optional[Dict[str, Any]]]:
    """Snapshot a whole state vector, preserving pid keys."""
    return {pid: snapshot_state(state) for pid, state in states.items()}
