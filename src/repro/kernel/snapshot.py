"""State snapshots without blanket ``copy.deepcopy``.

Both engines must snapshot process states (for ``state_before`` records
and final states) and defensively copy message payloads.  The states in
this library are overwhelmingly flat ``dict``s of immutable values —
ints, strings, tuples of ints, frozensets — for which ``copy.deepcopy``
pays its full recursive-memoization cost to produce what a shallow copy
would.  These helpers walk the value once: deeply-immutable values are
shared (safe — nobody can mutate them), mutable containers are rebuilt
recursively, and anything exotic falls back to ``copy.deepcopy``.

The observable semantics match ``deepcopy`` for simulation purposes:
mutating the original after a snapshot never affects the snapshot.
(The one deliberate difference: aliasing between two *mutable* values
inside one state is not preserved — each reference gets its own copy.
No protocol in the library relies on intra-state aliasing.)
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Any, Dict, Mapping, Optional

__all__ = ["copy_payload", "copy_value", "snapshot_state", "snapshot_states"]

_ATOMS = (int, float, complex, bool, str, bytes, type(None))


def _is_frozen_dataclass(value: Any) -> bool:
    return (
        dataclasses.is_dataclass(value)
        and not isinstance(value, type)
        and value.__dataclass_params__.frozen
    )


def _is_deeply_immutable(value: Any) -> bool:
    if isinstance(value, _ATOMS):
        return True
    if isinstance(value, (tuple, frozenset)):
        return all(_is_deeply_immutable(item) for item in value)
    if _is_frozen_dataclass(value):
        return all(
            _is_deeply_immutable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        )
    return False


def copy_value(value: Any) -> Any:
    """A defensive copy of ``value``, sharing immutable substructure."""
    if _is_deeply_immutable(value):
        return value
    kind = type(value)
    if kind is dict:
        return {key: copy_value(item) for key, item in value.items()}
    if kind is list:
        return [copy_value(item) for item in value]
    if kind is set:
        return {copy_value(item) for item in value}
    if kind is tuple:
        return tuple(copy_value(item) for item in value)
    if kind is frozenset:
        return frozenset(copy_value(item) for item in value)
    copied = copy.deepcopy(value)
    if copied is value:
        # ``deepcopy`` treats some objects (custom ``__deepcopy__``,
        # ``copyreg``-atomic registrations) as shareable.  For a value we
        # could not prove immutable that would silently alias mutable
        # state across the snapshot boundary — refuse instead.
        raise TypeError(
            f"cannot snapshot {kind.__name__!r}: deepcopy returned the "
            "original object, so the snapshot would share mutable state "
            "with the live process; use immutable state values (or a "
            "frozen dataclass of immutable fields)"
        )
    return copied


def copy_payload(payload: Any) -> Any:
    """Defensive copy of a message payload (immutable fast path)."""
    return copy_value(payload)


def snapshot_state(state: Optional[Mapping[str, Any]]) -> Optional[Dict[str, Any]]:
    """Snapshot one process state (``None`` = crashed, stays ``None``).

    States must be mappings: a ``__slots__``-only or dataclass instance
    used as a whole-process state is rejected with a descriptive error
    (previously it would die on a bare ``AttributeError`` deep in the
    engine, or — for objects with an ``items`` attribute that is not a
    mapping protocol — silently produce garbage).
    """
    if state is None:
        return None
    if not isinstance(state, Mapping):
        raise TypeError(
            f"process state must be a mapping, got {type(state).__name__!r}; "
            "__slots__/dataclass states must expose their fields as a dict "
            "(the engines snapshot key-by-key)"
        )
    return {key: copy_value(item) for key, item in state.items()}


def snapshot_states(
    states: Mapping[int, Optional[Mapping[str, Any]]],
) -> Dict[int, Optional[Dict[str, Any]]]:
    """Snapshot a whole state vector, preserving pid keys."""
    return {pid: snapshot_state(state) for pid, state in states.items()}
