"""The kernel's observer/event-bus API.

Both engines narrate their execution as a stream of events instead of
doing inline history bookkeeping.  An :class:`Observer` subscribes to
the hooks it cares about; an :class:`EventBus` fans each event out to
every registered observer.  The classic artifacts —
:class:`~repro.histories.history.ExecutionHistory` and
:class:`~repro.asyncnet.scheduler.AsyncTrace` — are rebuilt by two
observers over this stream (:mod:`repro.kernel.recorders`), and the
streaming analyses (:mod:`repro.analysis.metrics`,
:mod:`repro.analysis.stabilization`) are further observers that compute
their measurements without materializing a full history.

Event vocabulary (``time`` is the actual round number in the
synchronous substrate and the virtual time in the asynchronous one):

================== ======================================================
``on_run_start``    system size, protocol, first round
``on_round_start``  (sync) round number + state snapshots at round start
``on_topology``     (sync) the round's effective edge sets, when the run
                    uses a non-complete or dynamic topology (never fired
                    on the default complete graph)
``on_send``         one message actually placed on the network
``on_deliver``      one message actually delivered
``on_fault``        one :class:`FaultEvent` (crash, omission, forgery,
                    corruption)
``on_state_commit`` a process committed a new state (``None`` = crashed)
``on_sample``       (async) sampled outputs at the trace cadence
``on_round_end``    (sync) the round's records are complete
``on_cache``        one run-cache access (:class:`CacheEvent`; emitted
                    by :mod:`repro.cache`, not by the engines)
``on_serve``        one serving-layer lifecycle step (:class:`ServeEvent`;
                    emitted by :mod:`repro.serve`, not by the engines)
``on_run_end``      final states at the end of the run
================== ======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Mapping, Optional, Sequence

__all__ = [
    "AsyncMessage",
    "CacheEvent",
    "EventBus",
    "FaultEvent",
    "FaultKind",
    "Observer",
    "ServeEvent",
]

ProcessId = int


class FaultKind:
    """The fault vocabulary shared by both substrates."""

    CRASH = "crash"
    SEND_OMISSION = "send-omission"
    RECEIVE_OMISSION = "receive-omission"
    FORGERY = "forgery"
    CORRUPTION = "corruption"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as seen by observers.

    ``time`` is the actual round number (sync) or virtual time (async).
    ``targets`` depends on the kind: crash → receivers of the final
    broadcast; send omission → receivers dropped; receive omission →
    senders dropped; forgery → receivers lied to; corruption → empty
    (the corrupted process is ``pid`` itself).
    """

    kind: str
    time: float
    pid: ProcessId
    targets: FrozenSet[ProcessId] = frozenset()


@dataclass(frozen=True)
class CacheEvent:
    """One run-cache access, as seen by observers.

    Emitted by :mod:`repro.cache` when a memoized simulation is looked
    up or stored: ``kind`` is ``"hit"``, ``"miss"``, ``"store"`` or
    ``"flush"``; ``namespace`` is the caller-chosen cache namespace
    (usually the experiment id or exploration target); ``key`` is the
    content digest; ``nbytes`` is the entry's serialized size (0 when
    unknown, e.g. on a miss).
    """

    kind: str
    namespace: str
    key: str = ""
    nbytes: int = 0


@dataclass(frozen=True)
class ServeEvent:
    """One serving-layer lifecycle step, as seen by observers.

    Emitted by :mod:`repro.serve` around request and fleet activity:
    ``kind`` is one of ``"request-start"``, ``"request-end"``,
    ``"request-error"``, ``"request-cancelled"``, ``"request-truncated"``,
    ``"task-dispatch"``, ``"task-cached"``, ``"task-executed"``,
    ``"task-retried"``, ``"task-failed"``, ``"worker-restart"``,
    ``"remote-entry-request"`` or ``"remote-entry-hit"``; ``namespace`` is the
    request's cache namespace (experiment id or exploration target);
    ``detail`` is free-form (endpoint, worker slot); ``count`` batches
    events that arrive in groups (e.g. tasks per shard).
    """

    kind: str
    namespace: str = ""
    detail: str = ""
    count: int = 1


@dataclass(frozen=True)
class AsyncMessage:
    """A message in the asynchronous substrate (no round numbers)."""

    sender: ProcessId
    receiver: ProcessId
    payload: Any
    sent_time: float


class Observer:
    """Base observer: every hook is a no-op; override what you need."""

    def on_run_start(self, n: int, protocol: Any, first_round: int = 1) -> None:
        pass

    def on_round_start(
        self,
        round_no: int,
        snapshots: Mapping[ProcessId, Optional[Dict[str, Any]]],
    ) -> None:
        pass

    def on_topology(
        self, round_no: int, edges: Sequence[Sequence[ProcessId]]
    ) -> None:
        """``edges[p]`` = p's broadcast receivers this round (self included)."""
        pass

    def on_send(self, message: Any, time: float) -> None:
        pass

    def on_deliver(self, message: Any, time: float) -> None:
        pass

    def on_fault(self, fault: FaultEvent) -> None:
        pass

    def on_state_commit(
        self, pid: ProcessId, time: float, state: Optional[Dict[str, Any]]
    ) -> None:
        pass

    def on_sample(self, time: float, outputs: Dict[ProcessId, Any]) -> None:
        pass

    def on_round_end(self, round_no: int) -> None:
        pass

    def on_cache(self, event: CacheEvent) -> None:
        pass

    def on_serve(self, event: ServeEvent) -> None:
        pass

    def on_run_end(
        self,
        time: float,
        final_states: Mapping[ProcessId, Optional[Dict[str, Any]]],
    ) -> None:
        pass


#: Hooks for which the bus precomputes capability flags (the per-event
#: hot path; run start/end fire once and are always dispatched).
_FLAGGED_HOOKS = (
    "round_start",
    "topology",
    "send",
    "deliver",
    "fault",
    "state_commit",
    "sample",
    "round_end",
    "cache",
    "serve",
)


def _subscribes(observer: Observer, hook: str) -> bool:
    """Does ``observer`` override ``on_<hook>`` (transitively for buses)?"""
    if isinstance(observer, EventBus):
        return getattr(observer, f"wants_{hook}")
    return getattr(type(observer), f"on_{hook}") is not getattr(
        Observer, f"on_{hook}"
    )


class EventBus(Observer):
    """Fans every event out to a fixed tuple of observers.

    The bus is itself an :class:`Observer`, so buses nest if a run ever
    needs to splice streams.

    Capability flags: for each per-event hook the bus precomputes
    ``wants_<hook>`` — True iff some registered observer actually
    overrides that hook (nested buses are inspected transitively).  The
    engines consult these flags to skip work that exists only to be
    narrated: state snapshots when nothing listens to ``round_start``,
    per-message ``on_send``/``on_deliver`` fan-out, per-transition
    ``on_state_commit`` calls.  An observer that merely inherits the
    base no-op does not count as a subscriber.
    """

    __slots__ = ("_observers",) + tuple(f"wants_{hook}" for hook in _FLAGGED_HOOKS)

    def __init__(self, observers: Sequence[Observer] = ()):
        self._observers = tuple(observers)
        for hook in _FLAGGED_HOOKS:
            setattr(
                self,
                f"wants_{hook}",
                any(_subscribes(observer, hook) for observer in self._observers),
            )

    @property
    def observers(self) -> "tuple[Observer, ...]":
        return self._observers

    def on_run_start(self, n, protocol, first_round=1):
        for observer in self._observers:
            observer.on_run_start(n, protocol, first_round)

    def on_round_start(self, round_no, snapshots):
        for observer in self._observers:
            observer.on_round_start(round_no, snapshots)

    def on_topology(self, round_no, edges):
        for observer in self._observers:
            observer.on_topology(round_no, edges)

    def on_send(self, message, time):
        for observer in self._observers:
            observer.on_send(message, time)

    def on_deliver(self, message, time):
        for observer in self._observers:
            observer.on_deliver(message, time)

    def on_fault(self, fault):
        for observer in self._observers:
            observer.on_fault(fault)

    def on_state_commit(self, pid, time, state):
        for observer in self._observers:
            observer.on_state_commit(pid, time, state)

    def on_sample(self, time, outputs):
        for observer in self._observers:
            observer.on_sample(time, outputs)

    def on_round_end(self, round_no):
        for observer in self._observers:
            observer.on_round_end(round_no)

    def on_cache(self, event):
        for observer in self._observers:
            observer.on_cache(event)

    def on_serve(self, event):
        for observer in self._observers:
            observer.on_serve(event)

    def on_run_end(self, time, final_states):
        for observer in self._observers:
            observer.on_run_end(time, final_states)
