"""The unified fault plane: one plan, two substrates.

The paper's whole point is that process failures and systemic failures
belong to one framework, in synchronous and asynchronous systems alike
(Definition 2.4 covers both; Figures 1–3 are synchronous, Figure 4
asynchronous).  Before this module the reproduction kept two disjoint
fault vocabularies: the synchronous engine took an
:class:`~repro.sync.adversary.Adversary` plus
:class:`~repro.sync.corruption.CorruptionPlan`, the asynchronous
scheduler its own ``crash_times``/``gst`` knobs.  A :class:`FaultPlan`
subsumes all of them, so any fault scenario can be aimed at either
substrate:

- ``crashes``: pid → time.  The sync engine crashes the process at
  round ``max(1, ceil(time))`` (a clean crash: its final broadcast
  reaches nobody); the async scheduler stops it at virtual time
  ``time``.  Either way the *crash set* is identical.
- ``omissions``: an arbitrary process-failure adversary (send/receive
  omission, forgery).  Synchronous-only — the paper's asynchronous
  model (Section 3) admits crash failures only, so translating a plan
  with omissions to the async substrate is a loud error.
- ``initial_corruption`` / ``mid_corruptions``: systemic failures —
  arbitrary state corruption at start or at time t (sync: start of
  round ``max(1, ceil(t))``; async: at virtual time ``t``).
- ``gst``: the asynchrony knob (global stabilization time); ignored by
  the perfectly synchronous substrate.

``to_sync()`` / ``to_async()`` produce the substrate-specific views the
engines consume; both :func:`repro.sync.engine.run_sync` and
:class:`repro.asyncnet.scheduler.AsyncScheduler` accept a
``fault_plan=`` argument directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Mapping, Optional, Sequence

from repro.sync.adversary import Adversary, RoundFaultPlan

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.kernel.topology import ChurnSchedule
from repro.sync.corruption import CorruptionPlan
from repro.util.validation import require

__all__ = [
    "AsyncFaultView",
    "ComposedAdversary",
    "CrashScheduleAdversary",
    "FaultPlan",
    "SyncFaultView",
    "WireFaults",
]

ProcessId = int


def _sync_round(time: float) -> int:
    """The actual round at which a fault scheduled for ``time`` lands."""
    return max(1, math.ceil(time))


class CrashScheduleAdversary(Adversary):
    """Crashes each scheduled process at its round, delivering nothing.

    The synchronous realization of a :class:`FaultPlan` crash schedule:
    a clean crash (empty survivor set) at round ``max(1, ceil(time))``,
    mirroring the async scheduler, where a crash at ``time`` simply
    stops the process before its next step.
    """

    def __init__(self, crashes: Mapping[ProcessId, float]):
        super().__init__(f=len(dict(crashes)))
        self._by_round: Dict[int, list] = {}
        for pid, time in crashes.items():
            self._by_round.setdefault(_sync_round(time), []).append(pid)

    def plan_round(self, round_no, alive, faulty_so_far) -> RoundFaultPlan:
        pids = self._by_round.get(round_no, ())
        return RoundFaultPlan(
            crashes={pid: frozenset() for pid in pids if pid in alive}
        )


class ComposedAdversary(Adversary):
    """Merges the per-round plans of several adversaries.

    Later parts never override earlier ones: for a pid targeted twice,
    the first part's entry wins (a crash always trumps — the engine
    ignores omissions of a crashing process anyway).
    """

    def __init__(self, parts: Sequence[Adversary], f: Optional[int] = None):
        super().__init__(f=sum(p.f for p in parts) if f is None else f)
        self._parts = tuple(parts)

    def plan_round(self, round_no, alive, faulty_so_far) -> RoundFaultPlan:
        merged = RoundFaultPlan()
        for part in self._parts:
            plan = part.plan_round(round_no, alive, faulty_so_far)
            for pid, survivors in plan.crashes.items():
                merged.crashes.setdefault(pid, survivors)
            for pid, dropped in plan.send_omissions.items():
                merged.send_omissions.setdefault(pid, dropped)
            for pid, dropped in plan.receive_omissions.items():
                merged.receive_omissions.setdefault(pid, dropped)
            for pid, lies in plan.forgeries.items():
                merged.forgeries.setdefault(pid, lies)
        return merged


@dataclass(frozen=True)
class SyncFaultView:
    """What the synchronous engine consumes from a :class:`FaultPlan`."""

    adversary: Optional[Adversary]
    corruption: Optional[CorruptionPlan]
    mid_run_corruptions: Dict[int, CorruptionPlan]


@dataclass(frozen=True)
class AsyncFaultView:
    """What the asynchronous scheduler consumes from a :class:`FaultPlan`."""

    crash_times: Dict[ProcessId, float]
    corruption: Optional[CorruptionPlan]
    mid_corruptions: Dict[float, CorruptionPlan]
    gst: float


@dataclass(frozen=True)
class WireFaults:
    """Wire-level asynchrony knobs for substrates with a real wire.

    The simulated substrates model message-level asynchrony internally
    (the sync engine through a :class:`~repro.sync.delays.DelayModel`,
    the async scheduler through its delay distribution and
    ``duplicate_probability``), so these knobs are consumed only by the
    live network runtime's interposer
    (:mod:`repro.net.interposer`), where they become actual wall-clock
    delays and duplicated frames on the transport.  ``to_sync()`` /
    ``to_async()`` ignore them — a plan that carries wire faults still
    translates to the simulators, which realize their own asynchrony.

    Attributes
    ----------
    delay:
        ``(lo, hi)`` uniform per-copy delivery delay, in the substrate's
        wall-clock seconds (before any cluster time scaling).
    duplication:
        Probability that a copy is delivered twice (independent delays).
    seed:
        Seed for the interposer's delay/duplication draws.
    """

    delay: "tuple" = (0.0, 0.0)
    duplication: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        lo, hi = self.delay
        require(0.0 <= lo <= hi, f"bad wire delay bounds {self.delay}")
        require(
            0.0 <= self.duplication <= 1.0,
            f"duplication must be in [0, 1], got {self.duplication}",
        )


@dataclass(frozen=True)
class FaultPlan:
    """One fault scenario, aimable at either substrate.

    Attributes
    ----------
    crashes:
        ``pid -> time`` crash schedule (both substrates).
    omissions:
        A process-failure adversary for omission/forgery campaigns
        (synchronous substrate only; the paper's async model is
        crash-only).
    initial_corruption:
        Systemic failure applied to the initial states.
    mid_corruptions:
        ``time -> plan``: systemic failures during execution.
    gst:
        Global stabilization time (asynchronous substrate only).
    f:
        Explicit fault budget; defaults to ``len(crashes)`` plus the
        omission adversary's budget.
    wire:
        Optional :class:`WireFaults` — extra wire-level delay and
        duplication, realized only by the live network runtime (the
        simulators model asynchrony through their own knobs and ignore
        this field).
    churn:
        Optional :class:`~repro.kernel.topology.ChurnSchedule` of
        join/leave/partition/heal events.  Engines read it directly
        (not via the views) and wrap the run's topology in a
        :class:`~repro.kernel.topology.DynamicTopology`.  Churn is a
        *topology* change, not a process failure: detached processes
        keep executing and never enter the faulty set, so the churn
        schedule does not count against the budget ``f``.
    """

    crashes: Mapping[ProcessId, float] = field(default_factory=dict)
    omissions: Optional[Adversary] = None
    initial_corruption: Optional[CorruptionPlan] = None
    mid_corruptions: Mapping[float, CorruptionPlan] = field(default_factory=dict)
    gst: float = 0.0
    f: Optional[int] = None
    wire: Optional[WireFaults] = None
    churn: Optional["ChurnSchedule"] = None

    @property
    def crash_set(self) -> FrozenSet[ProcessId]:
        """The processes this plan crashes (identical in both views)."""
        return frozenset(self.crashes)

    @property
    def budget(self) -> int:
        """The fault budget ``f`` this plan requires."""
        if self.f is not None:
            return self.f
        return len(self.crashes) + (self.omissions.f if self.omissions else 0)

    def corruption_rounds(self) -> "list[int]":
        """Actual rounds at which mid-run corruption lands (sync view)."""
        return sorted(_sync_round(t) for t in self.mid_corruptions)

    def to_sync(self) -> SyncFaultView:
        """Translate to the synchronous engine's fault vocabulary."""
        parts: list = []
        if self.crashes:
            parts.append(CrashScheduleAdversary(self.crashes))
        if self.omissions is not None:
            parts.append(self.omissions)
        if not parts:
            adversary: Optional[Adversary] = None
        elif len(parts) == 1 and self.f is None:
            adversary = parts[0]
        else:
            adversary = ComposedAdversary(parts, f=self.budget)
        mid: Dict[int, CorruptionPlan] = {}
        for time, plan in self.mid_corruptions.items():
            round_no = _sync_round(time)
            require(
                round_no not in mid,
                f"two mid-run corruptions land on sync round {round_no}; "
                f"schedule them at least one round apart",
            )
            mid[round_no] = plan
        return SyncFaultView(
            adversary=adversary,
            corruption=self.initial_corruption,
            mid_run_corruptions=mid,
        )

    def to_async(self) -> AsyncFaultView:
        """Translate to the asynchronous scheduler's fault vocabulary."""
        require(
            self.omissions is None,
            "omission adversaries have no asynchronous realization: the "
            "paper's async model (Section 3) admits crash failures only",
        )
        return AsyncFaultView(
            crash_times={pid: float(t) for pid, t in self.crashes.items()},
            corruption=self.initial_corruption,
            mid_corruptions={float(t): p for t, p in self.mid_corruptions.items()},
            gst=self.gst,
        )
