"""Empirical stabilization-time measurement.

The paper proves upper bounds on stabilization times (1 round for round
agreement, ``final_round`` for the compiler, plus up to another
``final_round`` of suspect-set effect).  These helpers *measure* the
stabilization a run actually exhibited: for each stable-coterie window
of a history, the smallest grace period ``s`` such that the problem
predicate holds on the window's rounds after the first ``s``.  The
maximum over windows is the run's empirical stabilization time, and the
distribution over a seed sweep is what the THM3/THM4 benches report
against the paper's claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.problems import Problem
from repro.histories.causality import CausalityTracker
from repro.histories.history import ExecutionHistory
from repro.histories.stability import StableWindow, stable_windows
from repro.kernel.recorders import HistoryRecorder

__all__ = [
    "StreamingClockStabilization",
    "WindowMeasure",
    "WindowStabilization",
    "window_stabilization_times",
    "empirical_stabilization",
]


@dataclass(frozen=True)
class WindowMeasure:
    """One stable-coterie window's streamed grace measurement.

    ``grace`` is the smallest prefix length after which clock agreement
    held through the window's end; ``None`` means no non-vacuous suffix
    held.  Unlike :meth:`StreamingClockStabilization.result`, measures
    are recorded for *every* window regardless of
    ``min_window_length`` — ftss verdicts at a given stabilization time
    need the short windows too (they are vacuous only relative to the
    candidate time, not to a fixed reporting threshold).
    """

    first_round: int
    last_round: int
    grace: Optional[int]

    @property
    def length(self) -> int:
        return self.last_round - self.first_round + 1

    def holds_at(self, stabilization_time: int) -> bool:
        """Whether this window meets its Def 2.4 obligation at time r."""
        if self.first_round + stabilization_time > self.last_round:
            return True  # obligation span empty: vacuously satisfied
        return self.grace is not None and self.grace <= stabilization_time


@dataclass(frozen=True)
class WindowStabilization:
    """How quickly Σ started holding inside one stable window.

    ``stabilized_after`` is the smallest grace (in rounds) after which
    Σ held through the window's end; ``None`` means Σ never held on any
    suffix of the window (the window may simply be too short, or the
    protocol genuinely failed there — ``window.length`` disambiguates).
    """

    window: StableWindow
    stabilized_after: Optional[int]


def window_stabilization_times(
    history: ExecutionHistory, problem: Problem
) -> List[WindowStabilization]:
    """Per-window empirical stabilization of ``problem`` over ``history``.

    For each maximal stable-coterie window ``[x, y]``, finds (by binary
    search over the monotone "holds on rounds (x+s, y]" predicate) the
    smallest ``s`` with a passing check.
    """
    faulty_by_round = history.faulty_by_round()
    out: List[WindowStabilization] = []
    for window in stable_windows(history):
        faulty = faulty_by_round[window.last_round - history.first_round]

        def holds_with_grace(grace: int) -> bool:
            first = window.first_round + grace
            if first > window.last_round:
                return True  # vacuous: nothing left to check
            sub = history.window(first, window.last_round)
            return problem.check(sub, faulty).holds

        if not holds_with_grace(window.length):
            # Even the vacuous grace failed — cannot happen; guard anyway.
            out.append(WindowStabilization(window=window, stabilized_after=None))
            continue
        lo, hi = 0, window.length
        if holds_with_grace(0):
            out.append(WindowStabilization(window=window, stabilized_after=0))
            continue
        # Invariant: fails at lo, holds at hi.
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if holds_with_grace(mid):
                hi = mid
            else:
                lo = mid
        stabilized = hi if hi < window.length else None
        out.append(WindowStabilization(window=window, stabilized_after=stabilized))
    return out


def empirical_stabilization(
    history: ExecutionHistory,
    problem: Problem,
    min_window_length: int = 2,
) -> Optional[int]:
    """The run's overall empirical stabilization time.

    The maximum of the per-window values over windows of at least
    ``min_window_length`` rounds (shorter windows carry no signal: the
    coterie changed before the protocol could possibly converge).
    Returns ``None`` if some qualifying window never stabilized — i.e.
    the run *refutes* every finite stabilization time.
    """
    measurements = window_stabilization_times(history, problem)
    worst: Optional[int] = 0
    for measurement in measurements:
        if measurement.window.length < min_window_length:
            continue
        if measurement.stabilized_after is None:
            # Distinguish "window too short to say" from "never held":
            # the window qualified by length, so this is a refutation.
            return None
        if worst is None or measurement.stabilized_after > worst:
            worst = measurement.stabilized_after
    return worst


class StreamingClockStabilization(HistoryRecorder):
    """Streaming ``empirical_stabilization`` for the clock-agreement Σ.

    Attach to a synchronous run's observer bus to measure the run's
    empirical stabilization time *as the run executes*, retaining only
    per-round clock digests of the current stable-coterie window — no
    :class:`ExecutionHistory` is materialized.  After the run,
    :meth:`result` equals ``empirical_stabilization(result.history,
    ClockAgreementProblem(), min_window_length)`` exactly
    (property-tested).

    How: each round's records are assembled (reusing the history
    recorder's round-building, then discarded), fed to a private
    :class:`CausalityTracker` to maintain the coterie incrementally;
    whenever the coterie grows, the closing window is scored on its
    buffered ``(round, clocks)`` rows by scanning for the last
    agreement/rate violation w.r.t. the faulty set at the window's end
    — the same grace :func:`window_stabilization_times` finds by
    binary search, since the "holds after grace s" predicate is
    monotone in ``s``.

    Clock-agreement only: general problem predicates need arbitrary
    sub-histories and go through the recorded-history path above.
    """

    def __init__(self, min_window_length: int = 2):
        super().__init__()
        self._min_window_length = min_window_length
        self._tracker: Optional[CausalityTracker] = None
        self._faulty: set = set()
        self._window_start: Optional[int] = None
        self._window_members: Optional[frozenset] = None
        self._window_rows: List[Tuple[int, Dict[int, Optional[int]]]] = []
        self._worst: Optional[int] = 0
        self._refuted = False
        #: Grace measurements for every closed window, in round order
        #: (short windows included — see :class:`WindowMeasure`).
        self.window_measures: List[WindowMeasure] = []

    def on_run_start(self, n, protocol, first_round=1):
        super().on_run_start(n, protocol, first_round)
        self._tracker = CausalityTracker(n)

    def on_round_end(self, round_no):
        round_history = self._finish_round(round_no)  # built, scored, dropped
        faulty_before = frozenset(self._faulty)
        assert self._tracker is not None
        self._tracker.advance(round_history)
        self._faulty |= round_history.deviators()

        everyone = frozenset(range(self._n or 0))
        correct = everyone - self._faulty
        if not correct:
            members = everyone
        else:
            members_set = set(everyone)
            for q in correct:
                members_set &= self._tracker.know(q)
                if not members_set:
                    break
            members = frozenset(members_set)

        if self._window_members is not None and members != self._window_members:
            # The coterie grew: the previous window closed at the
            # previous round, with the faulty set as of that round.
            self._close_window(faulty_before)
        if self._window_members is None:
            self._window_start = round_no
            self._window_members = members
            self._window_rows = []
        self._window_rows.append(
            (
                round_no,
                {
                    record.pid: record.clock_before
                    for record in round_history.records
                },
            )
        )

    def on_run_end(self, time, final_states):
        if self._window_members is not None:
            self._close_window(frozenset(self._faulty))

    def _close_window(self, faulty: frozenset) -> None:
        rows = self._window_rows
        first_round = self._window_start
        self._window_start = None
        self._window_members = None
        self._window_rows = []
        assert first_round is not None
        length = len(rows)

        live: List[Dict[int, int]] = [
            {
                pid: clock
                for pid, clock in clocks.items()
                if pid not in faulty and clock is not None
            }
            for _, clocks in rows
        ]
        last_bad: Optional[int] = None  # window-relative index
        for idx, clocks in enumerate(live):
            if len(set(clocks.values())) > 1:
                last_bad = idx
            if idx + 1 < length:
                nxt = live[idx + 1]
                for pid, clock in clocks.items():
                    if pid in nxt and nxt[pid] != clock + 1:
                        last_bad = idx
                        break
        grace = 0 if last_bad is None else last_bad + 1
        self.window_measures.append(
            WindowMeasure(
                first_round=first_round,
                last_round=first_round + length - 1,
                grace=grace if grace < length else None,
            )
        )
        if length < self._min_window_length:
            return
        if grace >= length:
            # Only the vacuous grace passed: the window refutes every
            # finite stabilization time.
            self._refuted = True
            return
        if self._worst is None or grace > self._worst:
            self._worst = grace

    def holds_at(self, stabilization_time: int) -> bool:
        """Streaming ftss@r verdict for the clock-agreement Σ.

        True iff every closed window met its Definition 2.4 obligation
        at the candidate stabilization time (vacuously for windows of
        length ≤ r).  Call after the run ends.
        """
        return all(
            measure.holds_at(stabilization_time)
            for measure in self.window_measures
        )

    def result(self) -> Optional[int]:
        """The run's empirical stabilization time (None = refuted)."""
        return None if self._refuted else self._worst
