"""Empirical stabilization-time measurement.

The paper proves upper bounds on stabilization times (1 round for round
agreement, ``final_round`` for the compiler, plus up to another
``final_round`` of suspect-set effect).  These helpers *measure* the
stabilization a run actually exhibited: for each stable-coterie window
of a history, the smallest grace period ``s`` such that the problem
predicate holds on the window's rounds after the first ``s``.  The
maximum over windows is the run's empirical stabilization time, and the
distribution over a seed sweep is what the THM3/THM4 benches report
against the paper's claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.problems import Problem
from repro.histories.history import ExecutionHistory
from repro.histories.stability import StableWindow, stable_windows

__all__ = [
    "WindowStabilization",
    "window_stabilization_times",
    "empirical_stabilization",
]


@dataclass(frozen=True)
class WindowStabilization:
    """How quickly Σ started holding inside one stable window.

    ``stabilized_after`` is the smallest grace (in rounds) after which
    Σ held through the window's end; ``None`` means Σ never held on any
    suffix of the window (the window may simply be too short, or the
    protocol genuinely failed there — ``window.length`` disambiguates).
    """

    window: StableWindow
    stabilized_after: Optional[int]


def window_stabilization_times(
    history: ExecutionHistory, problem: Problem
) -> List[WindowStabilization]:
    """Per-window empirical stabilization of ``problem`` over ``history``.

    For each maximal stable-coterie window ``[x, y]``, finds (by binary
    search over the monotone "holds on rounds (x+s, y]" predicate) the
    smallest ``s`` with a passing check.
    """
    faulty_by_round = history.faulty_by_round()
    out: List[WindowStabilization] = []
    for window in stable_windows(history):
        faulty = faulty_by_round[window.last_round - history.first_round]

        def holds_with_grace(grace: int) -> bool:
            first = window.first_round + grace
            if first > window.last_round:
                return True  # vacuous: nothing left to check
            sub = history.window(first, window.last_round)
            return problem.check(sub, faulty).holds

        if not holds_with_grace(window.length):
            # Even the vacuous grace failed — cannot happen; guard anyway.
            out.append(WindowStabilization(window=window, stabilized_after=None))
            continue
        lo, hi = 0, window.length
        if holds_with_grace(0):
            out.append(WindowStabilization(window=window, stabilized_after=0))
            continue
        # Invariant: fails at lo, holds at hi.
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if holds_with_grace(mid):
                hi = mid
            else:
                lo = mid
        stabilized = hi if hi < window.length else None
        out.append(WindowStabilization(window=window, stabilized_after=stabilized))
    return out


def empirical_stabilization(
    history: ExecutionHistory,
    problem: Problem,
    min_window_length: int = 2,
) -> Optional[int]:
    """The run's overall empirical stabilization time.

    The maximum of the per-window values over windows of at least
    ``min_window_length`` rounds (shorter windows carry no signal: the
    coterie changed before the protocol could possibly converge).
    Returns ``None`` if some qualifying window never stabilized — i.e.
    the run *refutes* every finite stabilization time.
    """
    measurements = window_stabilization_times(history, problem)
    worst: Optional[int] = 0
    for measurement in measurements:
        if measurement.window.length < min_window_length:
            continue
        if measurement.stabilized_after is None:
            # Distinguish "window too short to say" from "never held":
            # the window qualified by length, so this is a refutation.
            return None
        if worst is None or measurement.stabilized_after > worst:
            worst = measurement.stabilized_after
    return worst
