"""Message and overhead accounting.

The compiler and the asynchronous superimposition buy their tolerance
with extra traffic (round tags on every message, estimate broadcasts
instead of unicasts, periodic retransmission).  These helpers quantify
that cost so the FIG3/ASYNC benches can report "Π⁺ costs k× the
messages of Π per decision" style rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.histories.history import ExecutionHistory
from repro.kernel.events import Observer

__all__ = [
    "MessageStats",
    "StreamingMessageStats",
    "run_message_stats",
    "message_overhead",
]


@dataclass(frozen=True)
class MessageStats:
    """Traffic totals for one recorded synchronous run."""

    rounds: int
    messages_sent: int
    messages_delivered: int
    payload_bytes: int

    @property
    def messages_per_round(self) -> float:
        return self.messages_sent / self.rounds if self.rounds else 0.0


def run_message_stats(history: ExecutionHistory) -> MessageStats:
    """Count traffic in a recorded history.

    Payload size is approximated by ``len(repr(payload))`` — a
    simulator has no wire format; the *ratio* between protocols is the
    meaningful number and repr length tracks structural size faithfully
    for the dict/tuple payloads our protocols exchange.
    """
    payload_bytes = 0
    for round_history in history:
        for record in round_history.records:
            for message in record.sent:
                payload_bytes += len(repr(message.payload))
    return MessageStats(
        rounds=len(history),
        messages_sent=history.messages_sent(),
        messages_delivered=history.messages_delivered(),
        payload_bytes=payload_bytes,
    )


class StreamingMessageStats(Observer):
    """Streaming counterpart of :func:`run_message_stats`.

    Attach to a run's observer bus (``run_sync(...,
    observers=(stats,))``) to accumulate the same traffic totals
    directly from the event stream, without reading (or even keeping)
    the full history.  After the run, :meth:`stats` equals
    ``run_message_stats(result.history)`` exactly — property-tested.

    Also works on the asynchronous substrate, where "rounds" stays 0
    (the async stream has no ``on_round_end``) and the per-round
    ratio is meaningless; the raw counters remain valid.
    """

    def __init__(self) -> None:
        self._rounds = 0
        self._sent = 0
        self._delivered = 0
        self._payload_bytes = 0

    def on_send(self, message, time):
        self._sent += 1
        self._payload_bytes += len(repr(message.payload))

    def on_deliver(self, message, time):
        self._delivered += 1

    def on_round_end(self, round_no):
        self._rounds += 1

    def stats(self) -> MessageStats:
        """The totals accumulated so far."""
        return MessageStats(
            rounds=self._rounds,
            messages_sent=self._sent,
            messages_delivered=self._delivered,
            payload_bytes=self._payload_bytes,
        )


def message_overhead(
    baseline: MessageStats, augmented: MessageStats
) -> Optional[float]:
    """Bytes-per-round overhead factor of ``augmented`` over ``baseline``."""
    if baseline.rounds == 0 or baseline.payload_bytes == 0:
        return None
    base_rate = baseline.payload_bytes / baseline.rounds
    augmented_rate = augmented.payload_bytes / augmented.rounds
    return augmented_rate / base_rate
