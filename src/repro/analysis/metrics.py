"""Message and overhead accounting.

The compiler and the asynchronous superimposition buy their tolerance
with extra traffic (round tags on every message, estimate broadcasts
instead of unicasts, periodic retransmission).  These helpers quantify
that cost so the FIG3/ASYNC benches can report "Π⁺ costs k× the
messages of Π per decision" style rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.histories.history import ExecutionHistory

__all__ = ["MessageStats", "run_message_stats", "message_overhead"]


@dataclass(frozen=True)
class MessageStats:
    """Traffic totals for one recorded synchronous run."""

    rounds: int
    messages_sent: int
    messages_delivered: int
    payload_bytes: int

    @property
    def messages_per_round(self) -> float:
        return self.messages_sent / self.rounds if self.rounds else 0.0


def run_message_stats(history: ExecutionHistory) -> MessageStats:
    """Count traffic in a recorded history.

    Payload size is approximated by ``len(repr(payload))`` — a
    simulator has no wire format; the *ratio* between protocols is the
    meaningful number and repr length tracks structural size faithfully
    for the dict/tuple payloads our protocols exchange.
    """
    payload_bytes = 0
    for round_history in history:
        for record in round_history.records:
            for message in record.sent:
                payload_bytes += len(repr(message.payload))
    return MessageStats(
        rounds=len(history),
        messages_sent=history.messages_sent(),
        messages_delivered=history.messages_delivered(),
        payload_bytes=payload_bytes,
    )


def message_overhead(
    baseline: MessageStats, augmented: MessageStats
) -> Optional[float]:
    """Bytes-per-round overhead factor of ``augmented`` over ``baseline``."""
    if baseline.rounds == 0 or baseline.payload_bytes == 0:
        return None
    base_rate = baseline.payload_bytes / baseline.rounds
    augmented_rate = augmented.payload_bytes / augmented.rounds
    return augmented_rate / base_rate
