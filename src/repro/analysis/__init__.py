"""Measurement and reporting over recorded runs.

- :mod:`repro.analysis.stabilization` — empirical stabilization times:
  the smallest grace period under which a problem predicate holds on
  every stable-coterie window of a history.  Includes a streaming
  (observer-based) counterpart for the clock-agreement problem.
- :mod:`repro.analysis.metrics` — message/overhead accounting for the
  compiler's and superimposition's cost benches, with a streaming
  counterpart that accumulates the same totals from the kernel's
  event bus.
- :mod:`repro.analysis.report` — "paper claim vs measured" tables the
  benchmark harness prints and EXPERIMENTS.md records.
"""

from repro.analysis.metrics import (
    StreamingMessageStats,
    message_overhead,
    run_message_stats,
)
from repro.analysis.report import ExperimentReport
from repro.analysis.stabilization import (
    StreamingClockStabilization,
    empirical_stabilization,
    window_stabilization_times,
)
from repro.analysis.tracefmt import format_async_trace, format_history

__all__ = [
    "ExperimentReport",
    "StreamingClockStabilization",
    "StreamingMessageStats",
    "empirical_stabilization",
    "format_async_trace",
    "format_history",
    "message_overhead",
    "run_message_stats",
    "window_stabilization_times",
]
