"""Measurement and reporting over recorded runs.

- :mod:`repro.analysis.stabilization` — empirical stabilization times:
  the smallest grace period under which a problem predicate holds on
  every stable-coterie window of a history.
- :mod:`repro.analysis.metrics` — message/overhead accounting for the
  compiler's and superimposition's cost benches.
- :mod:`repro.analysis.report` — "paper claim vs measured" tables the
  benchmark harness prints and EXPERIMENTS.md records.
"""

from repro.analysis.metrics import message_overhead, run_message_stats
from repro.analysis.report import ExperimentReport
from repro.analysis.stabilization import (
    empirical_stabilization,
    window_stabilization_times,
)
from repro.analysis.tracefmt import format_async_trace, format_history

__all__ = [
    "ExperimentReport",
    "empirical_stabilization",
    "format_async_trace",
    "format_history",
    "message_overhead",
    "run_message_stats",
    "window_stabilization_times",
]
