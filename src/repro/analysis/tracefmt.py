"""Human-readable renderings of recorded executions.

Debugging a distributed protocol is archaeology over its trace; these
helpers render the artifacts the simulators record:

- :func:`format_history` — a per-round timeline of a synchronous
  :class:`~repro.histories.history.ExecutionHistory`: each process's
  round variable, deviation marks, and (optionally) chosen state
  fields.  Crashes show as ``†``, omissions as ``!``, forgeries as
  ``?``; coterie growth rounds are flagged since they are the
  de-stabilizing events every analysis pivots on.
- :func:`format_async_trace` — a sampled timeline of an asynchronous
  run's outputs.

Both are pure functions returning strings, so tests can pin their
behaviour and examples can print them.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.asyncnet.scheduler import AsyncTrace
from repro.histories.coterie import coterie_timeline
from repro.histories.history import ExecutionHistory, ProcessRoundRecord
from repro.util.formatting import format_table

__all__ = ["format_history", "format_async_trace"]

#: Extracts a short display string from a process state.
FieldFn = Callable[[dict], object]


def _deviation_marks(record: ProcessRoundRecord) -> str:
    marks = ""
    if record.crashed:
        marks += "†"
    if record.omitted_sends or record.omitted_receives:
        marks += "!"
    if record.forged_sends:
        marks += "?"
    return marks


def format_history(
    history: ExecutionHistory,
    fields: Optional[Sequence[FieldFn]] = None,
    max_rounds: int = 50,
    title: str = "",
) -> str:
    """Render a synchronous history as a per-round timeline table.

    One row per round: the coterie (with ``+`` on rounds where it
    grew), then one cell per process showing the round variable,
    deviation marks, and any extra ``fields`` (callables applied to the
    state; exceptions render as ``~``).  Long histories are elided in
    the middle, keeping the first and last ``max_rounds // 2`` rounds.
    """
    timeline = coterie_timeline(history)
    headers = ["round", "coterie"] + [f"p{pid}" for pid in history.processes]
    rows: List[List[object]] = []

    round_numbers = list(range(history.first_round, history.last_round + 1))
    elided = False
    if len(round_numbers) > max_rounds:
        half = max_rounds // 2
        round_numbers = round_numbers[:half] + round_numbers[-half:]
        elided = True

    previous_members = None
    for round_no in round_numbers:
        index = round_no - history.first_round
        members = timeline[index]
        grew = previous_members is not None and members != timeline[index - 1]
        if index > 0:
            grew = members != timeline[index - 1]
        else:
            grew = False
        coterie_cell = "{" + ",".join(map(str, sorted(members))) + "}"
        if grew:
            coterie_cell += " +"
        row: List[object] = [round_no, coterie_cell]
        for record in history.round(round_no).records:
            if record.state_before is None:
                row.append("†")
                continue
            cell = str(record.clock_before)
            marks = _deviation_marks(record)
            if marks:
                cell += marks
            for field in fields or ():
                try:
                    cell += f" {field(record.state_before)}"
                except Exception:
                    cell += " ~"
            row.append(cell)
        rows.append(row)
        previous_members = members

    text = format_table(headers, rows, title=title)
    legend = "† crashed   ! omission   ? forgery   + coterie grew"
    if elided:
        legend += f"   (middle rounds elided, {len(history)} total)"
    return text + "\n" + legend


def format_async_trace(
    trace: AsyncTrace,
    max_samples: int = 30,
    title: str = "",
) -> str:
    """Render an asynchronous trace's sampled outputs as a timeline."""
    headers = ["time"] + [f"p{pid}" for pid in range(trace.n)]
    samples = trace.samples
    elided = False
    if len(samples) > max_samples:
        half = max_samples // 2
        samples = samples[:half] + samples[-half:]
        elided = True
    rows: List[List[object]] = []
    for time, outputs in samples:
        row: List[object] = [f"{time:.0f}"]
        for pid in range(trace.n):
            if pid not in outputs:
                row.append("†")
            else:
                row.append(_short(outputs[pid]))
        rows.append(row)
    text = format_table(headers, rows, title=title)
    footer = f"† crashed   messages sent: {trace.messages_sent}"
    if elided:
        footer += f"   (middle samples elided, {len(trace.samples)} total)"
    return text + "\n" + footer


def _short(value: Any, limit: int = 24) -> str:
    if isinstance(value, frozenset):
        rendered = "{" + ",".join(map(str, sorted(value))) + "}"
    else:
        rendered = str(value)
    if len(rendered) > limit:
        rendered = rendered[: limit - 1] + "…"
    return rendered
