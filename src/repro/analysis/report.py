"""Claim-vs-measured reporting for the benchmark harness.

Each bench builds an :class:`ExperimentReport`, adds one row per
parameter point, and prints it.  The printed tables are the repository's
stand-in for the paper's (theory-only) evaluation: every row pairs the
paper's claimed bound/behaviour with what the simulation measured, and
EXPERIMENTS.md records the outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.util.formatting import format_table

__all__ = ["ExperimentReport"]


def _json_cell(value: object) -> object:
    """JSON-safe cell: native scalars pass through, the rest stringify."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass
class ExperimentReport:
    """A titled table of measured rows, with the paper's claim on top."""

    experiment_id: str
    title: str
    claim: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"{self.experiment_id}: row has {len(values)} cells, "
                f"headers have {len(self.headers)}"
            )
        self.rows.append(values)

    def render(self) -> str:
        banner = f"== {self.experiment_id}: {self.title} =="
        claim = f"paper claim: {self.claim}"
        table = format_table(self.headers, self.rows)
        return "\n".join([banner, claim, table])

    def emit(self) -> None:
        """Print the report (benches call this so output lands in logs)."""
        print()
        print(self.render())

    def to_json_dict(self) -> Dict[str, Any]:
        """A machine-readable mirror of :meth:`render` for tooling.

        Rows come back as header-keyed dicts so consumers don't have to
        zip columns themselves; non-scalar cells are stringified exactly
        as the rendered table shows them.
        """
        headers = [str(header) for header in self.headers]
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "headers": headers,
            "rows": [
                dict(zip(headers, (_json_cell(cell) for cell in row)))
                for row in self.rows
            ],
        }
