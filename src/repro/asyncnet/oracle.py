"""The Eventually Weak failure detector (◇W) as a simulator oracle.

The paper (following Chandra & Toueg [CT91]) *assumes* a ◇W detector
and builds on top of it.  ◇W is defined by two properties:

- **Weak completeness** — eventually every faulty process is suspected
  by *at least one* correct process (permanently);
- **Eventual weak accuracy** — eventually *at least one* correct
  process is never suspected by any correct process.

An oracle satisfying exactly these properties — no more — is the
faithful realization: before the global stabilization time it suspects
arbitrarily (seeded pseudo-random flicker, correct processes
included); afterwards it suspects each crashed process at exactly one
designated correct *watcher* (weak, not strong, completeness — so the
Figure 4 transformation has real work to do) and never suspects the
designated *anchor* (in fact, after GST it suspects no correct process
at all, which ◇W permits).

Optionally, ``perpetual_false_suspicions`` keeps chosen (watcher,
victim) pairs suspected forever even though the victim is correct —
still legal ◇W as long as the victim is not the anchor — to stress the
consumers' tolerance of everlasting mistakes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.util.rng import derive_seed
from repro.util.validation import require

__all__ = ["WeakDetectorOracle"]


class WeakDetectorOracle:
    """A ground-truth-backed ◇W oracle for the asynchronous simulator."""

    def __init__(
        self,
        n: int,
        crash_times: Mapping[int, float],
        gst: float,
        seed: int = 0,
        flicker_rate: float = 0.25,
        flicker_bucket: float = 1.0,
        perpetual_false_suspicions: Iterable[Tuple[int, int]] = (),
    ):
        self.n = n
        self.gst = gst
        self._crash_times = dict(crash_times)
        self._seed = derive_seed(seed, "weak-oracle")
        self._flicker_rate = flicker_rate
        self._flicker_bucket = flicker_bucket

        correct = sorted(set(range(n)) - set(self._crash_times))
        require(bool(correct), "the oracle needs at least one correct process")
        #: The process guaranteed never to be suspected after GST.
        self.anchor = correct[0]
        #: Watcher assignment: the single correct process that will
        #: (eventually, permanently) suspect each crashed process.
        self._watcher: Dict[int, int] = {}
        for index, s in enumerate(sorted(self._crash_times)):
            self._watcher[s] = correct[index % len(correct)]

        self._perpetual = frozenset(perpetual_false_suspicions)
        for watcher, victim in self._perpetual:
            require(
                victim != self.anchor,
                f"perpetual suspicion of the anchor ({self.anchor}) would "
                f"violate eventual weak accuracy",
            )
            require(
                watcher not in self._crash_times,
                f"perpetual watcher {watcher} must be correct",
            )

    def watcher_of(self, s: int) -> Optional[int]:
        """The correct process assigned to suspect crashed ``s``."""
        return self._watcher.get(s)

    def suspects(self, pid: int, time: float) -> FrozenSet[int]:
        """The processes ``pid`` is told to suspect at ``time``."""
        out = {victim for watcher, victim in self._perpetual if watcher == pid}
        if time < self.gst:
            bucket = int(time / self._flicker_bucket)
            for s in range(self.n):
                if s == pid:
                    continue
                roll = derive_seed(self._seed, f"{pid}:{s}:{bucket}") % 1000
                if roll < self._flicker_rate * 1000:
                    out.add(s)
            return frozenset(out)
        for s, crash_time in self._crash_times.items():
            if crash_time <= time and self._watcher[s] == pid:
                out.add(s)
        return frozenset(out)
