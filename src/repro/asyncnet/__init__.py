"""Asynchronous system simulator (paper, Section 3).

The paper's asynchronous model: unbounded differences in process speeds
and message delivery times, crash-type process failures, and systemic
failures (arbitrary initial states).  The simulator is a discrete-event
scheduler:

- every process takes *ticks* (local steps) at its own drifting rate —
  unbounded relative speeds within a run;
- messages are reliable but arbitrarily delayed; an optional *global
  stabilization time* (GST) bounds delays afterwards, which is how the
  Eventually-Weak failure-detector oracle earns its "eventually";
- crashes stop a process permanently at a scheduled instant;
- systemic failures install arbitrary initial states (reusing the
  corruption plans of :mod:`repro.sync.corruption`).

Outputs are sampled at a fixed virtual-time cadence, producing the time
series over which "eventually, permanently" detector properties and
consensus specifications are checked empirically.
"""

from repro.asyncnet.oracle import WeakDetectorOracle
from repro.asyncnet.scheduler import (
    AsyncProtocol,
    AsyncScheduler,
    AsyncTrace,
    ProcessContext,
)

__all__ = [
    "AsyncProtocol",
    "AsyncScheduler",
    "AsyncTrace",
    "ProcessContext",
    "WeakDetectorOracle",
]
