"""Discrete-event scheduler for asynchronous protocols.

Processes are reactive state machines: the scheduler calls
:meth:`AsyncProtocol.on_tick` at each local step and
:meth:`AsyncProtocol.on_message` at each delivery, passing a
:class:`ProcessContext` through which the handler reads/writes its
state, sends messages, and queries the Eventually-Weak failure-detector
oracle.  Unlike the synchronous engine's pure-functional transitions,
handlers mutate ``ctx.state`` in place — the conventional event-driven
idiom.

Like the synchronous engine, the scheduler is built on the simulation
kernel (:mod:`repro.kernel`): faults may be supplied through the
classic ``crash_times``/``corruption``/``gst`` knobs or as one unified
:class:`~repro.kernel.faults.FaultPlan`, and the run is narrated to an
observer bus (sends, deliveries, crashes, corruption, state commits,
samples).  The :class:`AsyncTrace` is rebuilt from that event stream by
an :class:`~repro.kernel.recorders.AsyncTraceRecorder`; callers may
attach further observers via ``observers``.

Asynchrony knobs:

- per-process speed factors and per-tick jitter (unbounded *relative*
  speeds across processes);
- per-message random delays, drawn from a wider distribution before
  the *global stabilization time* (GST) and a bounded one after it;
- crash schedule: a crashed process takes no further steps and
  receives nothing.

Determinism: everything random is derived from one seed, so runs are
exactly reproducible.
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.kernel.corruptions import apply_corruption
from repro.kernel.events import AsyncMessage, EventBus, FaultEvent, FaultKind, Observer
from repro.kernel.faults import FaultPlan
from repro.kernel.recorders import AsyncTraceRecorder
from repro.kernel.snapshot import copy_payload
from repro.util.rng import make_rng
from repro.util.validation import require, require_process_count

__all__ = ["AsyncProtocol", "AsyncScheduler", "AsyncTrace", "ProcessContext"]

ProcessId = int


class AsyncProtocol(ABC):
    """An asynchronous, message-driven protocol."""

    name: str = "async-protocol"

    @abstractmethod
    def initial_state(self, pid: int, n: int) -> Dict[str, Any]:
        """The specified ("good") initial state."""

    @abstractmethod
    def on_tick(self, ctx: "ProcessContext") -> None:
        """One local step: guarded actions, periodic re-sends, timeouts."""

    @abstractmethod
    def on_message(self, ctx: "ProcessContext", sender: int, payload: Any) -> None:
        """Handle one delivered message."""

    def output(self, state: Mapping[str, Any]) -> Any:
        """The externally observable output sampled by the scheduler.

        E.g. a failure detector returns its suspect set; a consensus
        protocol returns its decision log.  Must be cheap and built
        from immutable pieces (it is stored in the trace).
        """
        return None

    def arbitrary_state(self, pid: int, n: int, rng) -> Dict[str, Any]:
        """An arbitrary state in the protocol's state space (corruption)."""
        return self.initial_state(pid, n)


class ProcessContext:
    """The face a protocol handler sees: its state, clock, and network."""

    def __init__(self, scheduler: "AsyncScheduler", pid: int):
        self._scheduler = scheduler
        self.pid = pid

    @property
    def n(self) -> int:
        return self._scheduler.n

    @property
    def time(self) -> float:
        """Current virtual time (read-only; handlers cannot set timers
        beyond their regular tick cadence)."""
        return self._scheduler.now

    @property
    def state(self) -> Dict[str, Any]:
        return self._scheduler.states[self.pid]

    def send(self, dest: int, payload: Any) -> None:
        """Send one message; it will arrive after an arbitrary delay."""
        self._scheduler._enqueue_message(self.pid, dest, payload)

    def broadcast(self, payload: Any) -> None:
        """Send along my current out-edges (every process, including
        self, on the default complete topology)."""
        for dest in self._scheduler._broadcast_targets(self.pid):
            self.send(dest, payload)

    def weak_suspects(self) -> FrozenSet[int]:
        """Query the Eventually-Weak failure-detector oracle (◇W).

        Returns the set of processes the oracle currently tells *this*
        process to suspect.  Empty when no oracle is configured.
        """
        oracle = self._scheduler.oracle
        if oracle is None:
            return frozenset()
        return oracle.suspects(self.pid, self._scheduler.now)


@dataclass
class AsyncTrace:
    """Everything recorded from one asynchronous run."""

    n: int
    duration: float
    #: (time, {pid: output}) at the sampling cadence; crashed pids absent.
    samples: List[Tuple[float, Dict[int, Any]]] = field(default_factory=list)
    final_states: Dict[int, Optional[Dict[str, Any]]] = field(default_factory=dict)
    crashed: FrozenSet[int] = frozenset()
    messages_sent: int = 0
    deliveries: int = 0

    @property
    def correct(self) -> FrozenSet[int]:
        return frozenset(range(self.n)) - self.crashed

    def outputs_over_time(self, pid: int) -> List[Tuple[float, Any]]:
        """The sampled output series of one process."""
        series = []
        for time, outputs in self.samples:
            if pid in outputs:
                series.append((time, outputs[pid]))
        return series


class AsyncScheduler:
    """Runs one asynchronous execution and records an :class:`AsyncTrace`.

    Parameters
    ----------
    protocol:
        The protocol every process runs.
    n:
        System size.
    seed:
        Master seed; all delays/jitters derive from it.
    tick_interval:
        Mean local-step period.  Each process gets a private speed
        factor in ``[0.5, 1.5]`` and each tick is jittered ±20%, so
        relative speeds vary without bound over time.
    delay:
        (lo, hi) post-GST message delay bounds.
    pre_gst_delay_max:
        Upper delay bound before GST (defaults to ``4 * hi``): the
        "unbounded" early asynchrony, finite so every message is
        eventually delivered (reliable channels).
    gst:
        Global stabilization time; ``0.0`` makes the whole run stable.
    crash_times:
        ``pid -> time``: crash schedule (crash faults only, per the
        paper's Section 3).
    oracle:
        The ◇W oracle answering :meth:`ProcessContext.weak_suspects`.
    corruption:
        A corruption plan applied to the initial states (systemic
        failure).  Duck-typed from :mod:`repro.sync.corruption`.
    sample_interval:
        Cadence at which outputs are recorded into the trace.
    duplicate_probability:
        Probability that a message is delivered *twice* (with
        independent delays).  Real networks duplicate; protocols built
        here are expected to be idempotent, and tests exercise that.
    fault_plan:
        A unified :class:`~repro.kernel.faults.FaultPlan` (the kernel's
        substrate-independent fault description), supplying the crash
        schedule, initial and mid-run corruption, and GST.  Mutually
        exclusive with ``crash_times``/``corruption`` (and overrides
        ``gst``).
    observers:
        Extra :class:`~repro.kernel.events.Observer` instances attached
        to the run's event bus alongside the trace recorder.
    topology:
        Communication :class:`~repro.kernel.topology.Topology`; a
        handler's ``broadcast`` goes to its current out-edges only
        (``ctx.send`` stays point-to-point).  Defaults to the complete
        graph, which is normalized away.  A churn schedule on the
        fault plan wraps the topology in a ``DynamicTopology``, with
        the dynamic round taken as ``max(1, ceil(now))`` — the same
        time→round mapping the fault plan uses for crashes.
    """

    def __init__(
        self,
        protocol: AsyncProtocol,
        n: int,
        seed: int = 0,
        tick_interval: float = 1.0,
        delay: Tuple[float, float] = (0.05, 0.5),
        pre_gst_delay_max: Optional[float] = None,
        gst: float = 0.0,
        crash_times: Optional[Mapping[int, float]] = None,
        oracle: Optional[Any] = None,
        corruption: Optional[Any] = None,
        sample_interval: float = 2.0,
        duplicate_probability: float = 0.0,
        fault_plan: Optional[FaultPlan] = None,
        observers: Sequence[Observer] = (),
        topology: Optional[Any] = None,
    ):
        require_process_count(n)
        require(tick_interval > 0, "tick_interval must be positive")
        require(0 < delay[0] <= delay[1], f"bad delay bounds {delay}")
        require(
            0.0 <= duplicate_probability <= 1.0,
            f"duplicate_probability must be in [0, 1], got {duplicate_probability}",
        )
        mid_corruptions: Dict[float, Any] = {}
        if fault_plan is not None:
            require(
                crash_times is None and corruption is None,
                "pass either fault_plan or crash_times/corruption, not both",
            )
            view = fault_plan.to_async()
            crash_times = view.crash_times
            corruption = view.corruption
            mid_corruptions = dict(view.mid_corruptions)
            gst = view.gst
        from repro.kernel.topology import CompleteTopology, DynamicTopology

        if fault_plan is not None and fault_plan.churn:
            topology = DynamicTopology(
                topology or CompleteTopology(n), fault_plan.churn
            )
        elif topology is not None and topology.complete:
            topology = None
        if topology is not None:
            require(
                topology.n == n,
                f"topology is sized for n={topology.n}, run has n={n}",
            )
        self._topology = topology
        self._duplicate_probability = duplicate_probability
        self.protocol = protocol
        self.n = n
        self.gst = gst
        self.oracle = oracle
        self.now = 0.0
        self._rng = make_rng(seed, f"async:{protocol.name}")
        self._tick_interval = tick_interval
        self._delay = delay
        self._pre_gst_delay_max = (
            pre_gst_delay_max if pre_gst_delay_max is not None else 4 * delay[1]
        )
        self._sample_interval = sample_interval
        self._crash_times = dict(crash_times or {})
        self._mid_corruptions = mid_corruptions
        self._speed = {
            pid: self._rng.uniform(0.5, 1.5) for pid in range(n)
        }

        self._recorder = AsyncTraceRecorder()
        self._bus = EventBus((self._recorder, *observers))
        self._bus.on_run_start(n, protocol)

        states: Dict[int, Optional[Dict[str, Any]]] = {
            pid: protocol.initial_state(pid, n) for pid in range(n)
        }
        if corruption is not None:
            states = self._corrupt(corruption, states, time=0.0)
        self.states = states

        self._crashed: set = set()
        self._queue: List[Tuple[float, int, str, Tuple]] = []
        self._seq = 0
        self._contexts = {pid: ProcessContext(self, pid) for pid in range(n)}

    # -- event plumbing ------------------------------------------------------

    def _push(self, time: float, kind: str, data: Tuple) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, kind, data))

    def _corrupt(
        self,
        plan: Any,
        states: Dict[int, Optional[Dict[str, Any]]],
        time: float,
    ) -> Dict[int, Optional[Dict[str, Any]]]:
        """Apply one corruption plan and narrate which memories it touched.

        Shared with the synchronous engine and the live network runtime
        (:func:`repro.kernel.corruptions.apply_corruption`).
        """
        return apply_corruption(self._bus, plan, self.protocol, states, self.n, time)

    def _broadcast_targets(self, pid: int):
        """Destinations of ``pid``'s broadcast right now."""
        if self._topology is None:
            return range(self.n)
        return self._topology.receivers(pid, max(1, math.ceil(self.now)))

    def _enqueue_message(self, sender: int, dest: int, payload: Any) -> None:
        if self._bus.wants_send:
            self._bus.on_send(
                AsyncMessage(
                    sender=sender, receiver=dest, payload=payload, sent_time=self.now
                ),
                self.now,
            )
        copies = 1
        if self._duplicate_probability and self._rng.random() < self._duplicate_probability:
            copies = 2
        lo, hi = self._delay
        for _ in range(copies):
            if self.now < self.gst:
                delay = self._rng.uniform(lo, self._pre_gst_delay_max)
            else:
                delay = self._rng.uniform(lo, hi)
            self._push(
                self.now + delay,
                "deliver",
                (dest, sender, copy_payload(payload), self.now),
            )

    def _next_tick_delay(self, pid: int) -> float:
        jitter = self._rng.uniform(0.8, 1.2)
        return self._tick_interval * self._speed[pid] * jitter

    # -- the run ----------------------------------------------------------------

    def run(
        self,
        max_time: float,
        stop_condition: Optional[Callable[["AsyncScheduler"], bool]] = None,
    ) -> AsyncTrace:
        """Execute until ``max_time`` (or the stop condition) and trace it."""
        require(max_time > 0, "max_time must be positive")

        for pid in range(self.n):
            self._push(self._next_tick_delay(pid), "tick", (pid,))
        for pid, time in self._crash_times.items():
            self._push(time, "crash", (pid,))
        for time in sorted(self._mid_corruptions):
            self._push(time, "corrupt", (self._mid_corruptions[time],))
        self._push(self._sample_interval, "sample", ())

        bus = self._bus
        wants_state_commit = bus.wants_state_commit
        wants_deliver = bus.wants_deliver
        while self._queue:
            time, _seq, kind, data = heapq.heappop(self._queue)
            if time > max_time:
                break
            self.now = time
            if kind == "crash":
                (pid,) = data
                self._crashed.add(pid)
                self.states[pid] = None
                bus.on_fault(
                    FaultEvent(kind=FaultKind.CRASH, time=time, pid=pid)
                )
                if wants_state_commit:
                    bus.on_state_commit(pid, time, None)
            elif kind == "tick":
                (pid,) = data
                if pid in self._crashed:
                    continue
                self.protocol.on_tick(self._contexts[pid])
                if wants_state_commit:
                    bus.on_state_commit(pid, time, self.states[pid])
                self._push(time + self._next_tick_delay(pid), "tick", (pid,))
            elif kind == "deliver":
                dest, sender, payload, sent_at = data
                if dest in self._crashed:
                    continue
                if wants_deliver:
                    bus.on_deliver(
                        AsyncMessage(
                            sender=sender,
                            receiver=dest,
                            payload=payload,
                            sent_time=sent_at,
                        ),
                        time,
                    )
                self.protocol.on_message(self._contexts[dest], sender, payload)
                if wants_state_commit:
                    bus.on_state_commit(dest, time, self.states[dest])
            elif kind == "corrupt":
                (plan,) = data
                self.states = self._corrupt(plan, self.states, time)
            elif kind == "sample":
                outputs = {
                    pid: self.protocol.output(state)
                    for pid, state in self.states.items()
                    if state is not None
                }
                self._bus.on_sample(time, outputs)
                self._push(time + self._sample_interval, "sample", ())
            if stop_condition is not None and stop_condition(self):
                break

        self._bus.on_run_end(max_time, self.states)
        return self._recorder.trace()
