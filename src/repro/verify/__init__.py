"""repro.verify — the exhaustive proof plane.

EXPLORE samples large fault-plan spaces and reports what it *found*;
this package walks small, curated spaces **exhaustively** and reports
what *cannot exist*.  One contract, two conformance-checked engines:

- :func:`verify` — prove (or refute) a target's claim over an entire
  fault-plan space, within the bounded horizon the space fixes;
- the **explicit-state engine** (:mod:`repro.verify.explicit`) — pure
  Python, always available: every plan judged on both of EXPLORE's
  codepaths, every per-round global state hash-consed into a canonical
  frontier;
- the **SMT engine** (:mod:`repro.verify.smt`) — optional
  (``pip install repro[smt]``): symbolic initial clocks, so corrupted
  plans are proved for *all* non-negative starts, not just seeded
  draws; loudly unavailable without z3, never an import error.

Verdicts render as replayable certificates
(:mod:`repro.verify.certificates`); refutations embed a concrete plan
byte-identical to an EXPLORE artifact; EXPLORE's shrunk counterexamples
upgrade from locally to *provably* minimal via
:func:`repro.verify.minimal.certify_minimal`.

CLI: ``python -m repro.verify prove|refute|certify|list``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.explore.artifacts import Artifact
from repro.explore.checkers import SpecVerdict
from repro.explore.space import PlanSpace
from repro.verify.explicit import explicit_verify
from repro.verify.result import FrontierStats, VerifyResult
from repro.verify.smt import (
    SmtUnavailableError,
    SmtUnsupportedError,
    smt_available,
    smt_verify,
)
from repro.verify.targets import (
    VERIFY_TARGETS,
    VerifyTarget,
    confirm_verdict,
    get_verify_target,
    streaming_verdict,
)

__all__ = [
    "CrossCheck",
    "FrontierStats",
    "SmtUnavailableError",
    "SmtUnsupportedError",
    "VERIFY_TARGETS",
    "VerifyResult",
    "VerifyTarget",
    "cross_check",
    "get_verify_target",
    "smt_available",
    "verify",
]

ENGINES = ("explicit", "smt")


def verify(
    target: str,
    n: Optional[int] = None,
    k: Optional[int] = None,
    space: Optional[PlanSpace] = None,
    *,
    at: Optional[int] = None,
    engine: str = "explicit",
    jobs: Optional[int] = None,
    max_plans: Optional[int] = None,
) -> VerifyResult:
    """Exhaust a fault-plan space for ``target``'s claim.

    ``space`` defaults to the target's curated space; ``n`` and ``k``
    resize it (system size and bounded horizon respectively) — the
    space stays a full cross-product, so the verdict is still about an
    *entire* space, just a resized one.  ``at`` re-instantiates the
    claim's stabilization time where the target supports it.

    ``engine`` is ``"explicit"`` (always available) or ``"smt"``
    (requires z3; raises :class:`SmtUnavailableError` otherwise).
    """
    vt = get_verify_target(target)
    resolved = space if space is not None else vt.space
    changes = {}
    if n is not None:
        changes["n"] = n
    if k is not None:
        changes["rounds"] = k
    if changes:
        resolved = replace(resolved, **changes)
    at_value = vt.default_at if at is None else at
    if engine == "explicit":
        return explicit_verify(vt, at_value, resolved, jobs=jobs, max_plans=max_plans)
    if engine == "smt":
        return smt_verify(vt, at_value, resolved, jobs=jobs, max_plans=max_plans)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")


@dataclass(frozen=True)
class CrossCheck:
    """An EXPLORE artifact judged through the verify model.

    The verify model re-derives both verdicts independently of whatever
    run produced the artifact; ``consistent`` means the stored verdict,
    the streaming path, and the definition-grade confirm path all tell
    the same story (streaming is a *filter*, so a holding stream with a
    violating confirm is the inconsistency that matters; the reverse is
    already surfaced as a mismatch by both engines).
    """

    artifact: Artifact
    streaming: SpecVerdict
    confirm: SpecVerdict
    #: confirm reproduced the stored verdict byte-for-byte.
    reproduced: bool

    @property
    def consistent(self) -> bool:
        return self.reproduced and self.streaming.holds == self.confirm.holds


def cross_check(artifact: Artifact) -> CrossCheck:
    """Re-judge an EXPLORE artifact through the verify model.

    Uses :meth:`Artifact.to_verify_instance` to locate the covered
    verify target (raises ``ValueError`` for uncovered targets, e.g.
    the asynchronous ``fig4``), then re-runs the spec through both
    verify codepaths.
    """
    name, at, spec = artifact.to_verify_instance()
    vt = get_verify_target(name)
    streaming = streaming_verdict(vt, at, spec)
    confirm = confirm_verdict(vt, at, spec)
    reproduced = (
        confirm.holds == artifact.verdict_holds
        and tuple(confirm.violations) == artifact.violations
    )
    return CrossCheck(
        artifact=artifact,
        streaming=streaming,
        confirm=confirm,
        reproduced=reproduced,
    )
