"""The SMT engine: bounded model checking with symbolic initial clocks.

Optional — requires ``z3-solver`` (``pip install repro[smt]``).  This
module is **import-safe without z3**: importing it never raises; every
solver entry point degrades to a structured :class:`SmtUnavailableError`
so callers (and CI environments without the extra) get a capability
error, not an ImportError.

What the engine exploits
------------------------

Two structural facts about the synchronous substrate make the encoding
small:

1. **Deliveries are fault-plan-determined.**  Which messages arrive in
   which round depends only on the plan's crashes and omission
   campaigns — never on the clock values being checked.  The per-round
   sender sets are therefore *concrete* (computed by
   :func:`delivered_senders`, a pure-Python twin that is property-tested
   against the real engine), and only the clocks are symbolic.
2. **The obligation structure is clock-independent.**  Stable-coterie
   windows, faulty sets, and obligation spans derive from deviations
   (crashes/omissions), so one concrete reference run of the plan
   yields the exact windows Definition 2.4 quantifies over; the solver
   then asks whether *any* initial clock assignment can violate Σ
   inside them.

The resulting verdict is **stronger** than the explicit engine's on
corrupted plans: where explicit-state checking runs the seeded
corruption draws the spaces enumerate, the solver quantifies over *all*
non-negative initial clocks.  For claims the paper proves (Theorem 3's
``fig1``), the two engines agree — ``unsat`` over a superset implies no
seeded draw can violate either; a disagreement in the other direction
(SMT refutes, explicit proves) would mean the claim only held for the
sampled corruptions, which is precisely worth a loud CI failure.

Supported targets: ``fig1`` and ``thm1`` (the round-agreement clock
protocols).  The compiled FloodMin (``fig3``) and the churn topologies
(``unison``) carry non-clock state the clock encoding does not model —
:class:`SmtUnsupportedError`, by design, rather than a silently wrong
answer.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.experiments.base import run_sweep
from repro.explore.space import PlanSpace, PlanSpec
from repro.explore.targets import _post_corruption_suffix
from repro.verify.result import VerifyResult
from repro.verify.targets import VerifyTarget, confirm_verdict

__all__ = [
    "SmtUnavailableError",
    "SmtUnsupportedError",
    "SMT_TARGETS",
    "concrete_clocks",
    "delivered_senders",
    "smt_available",
    "smt_verify",
]

#: Targets the clock encoding models.
SMT_TARGETS = ("fig1", "thm1")


class SmtUnavailableError(RuntimeError):
    """z3 is not importable in this environment.

    The SMT engine is an optional capability: install it with
    ``pip install repro[smt]`` (or ``pip install z3-solver``), or use
    ``--engine explicit``, which proves the same bounded claims in pure
    Python.
    """

    def __init__(self, message: Optional[str] = None):
        super().__init__(
            message
            or "the SMT engine requires z3 (pip install repro[smt]); "
            "the explicit engine (--engine explicit) needs no extras"
        )


class SmtUnsupportedError(ValueError):
    """The target or plan uses features the clock encoding cannot model."""


def smt_available() -> bool:
    """Is z3 importable?  Never raises."""
    try:
        import z3  # noqa: F401
    except Exception:
        return False
    return True


def _z3():
    try:
        import z3
    except ImportError as exc:
        raise SmtUnavailableError() from exc
    return z3


# ---------------------------------------------------------------------------
# Pure-Python twins of the engine's delivery and clock semantics
# ---------------------------------------------------------------------------
#
# These two functions ARE the model: the z3 encoding below is a direct
# symbolic transcription of them.  They import no solver, so the
# property suite pins them against the real engine (run_sync histories)
# in every environment — when they match the engine and z3 transcribes
# them faithfully, the solver's verdicts are about the same system the
# explicit engine exhausts.


def _crash_row(time: int) -> int:
    """The last round a process crashing at ``time`` has a state row."""
    return max(1, int(time))


def _last_row(spec: PlanSpec, pid: int) -> int:
    """The last history row ``pid`` owns (its crash round, or the horizon)."""
    for cpid, time in spec.crashes:
        if cpid == pid:
            return min(_crash_row(time), spec.rounds)
    return spec.rounds


def delivered_senders(spec: PlanSpec) -> Dict[int, Dict[int, FrozenSet[int]]]:
    """``senders[r][i]``: whose round-``r`` states reach ``i``'s row ``r+1``.

    The kernel's synchronous semantics, re-derived from the spec alone:

    - a process's rows exist through its crash round, but *during* the
      crash round it neither sends nor receives (so it feeds nobody's
      next row, and its own next row never exists);
    - a send omission by ``j`` over rounds ``[a, b]`` drops ``j → i``
      for ``i ≠ j`` (restricted to ``targets`` when given); a receive
      omission by ``i`` drops ``j → i`` for ``j ≠ i``; a general
      omission does both — self-delivery is never omitted;
    - churn and non-complete topologies are out of scope
      (:class:`SmtUnsupportedError` upstream).

    Only receivers alive at row ``r+1`` get an entry.
    """
    senders: Dict[int, Dict[int, FrozenSet[int]]] = {}
    pids = range(spec.n)
    for r in range(1, spec.rounds):
        per_receiver: Dict[int, FrozenSet[int]] = {}
        for i in pids:
            if _last_row(spec, i) < r + 1:
                continue  # i has no row r+1: crashed
            arrived = set()
            for j in pids:
                if _last_row(spec, j) < r + 1 and j != i:
                    # j's crash round is <= r: it does not send in round r.
                    # (j == i is unreachable here: i is alive at r + 1.)
                    continue
                dropped = False
                for om in spec.omissions:
                    if not (om.first_round <= r <= om.last_round):
                        continue
                    if om.kind in ("send", "general") and om.pid == j and j != i:
                        if om.targets is None or i in om.targets:
                            dropped = True
                    if om.kind in ("receive", "general") and om.pid == i and j != i:
                        dropped = True
                if not dropped:
                    arrived.add(j)
            per_receiver[i] = frozenset(arrived)
        senders[r] = per_receiver
    return senders


def concrete_clocks(
    spec: PlanSpec,
    initial_row: Optional[Dict[int, int]] = None,
    first_round: int = 1,
) -> Dict[int, Dict[int, int]]:
    """Evolve the clock protocol concretely from ``initial_row``.

    Returns ``rows[r][pid]`` for ``r`` in ``first_round .. spec.rounds``
    — the pure-Python twin of ``run_sync(RoundAgreementProtocol(), ...)``
    restricted to the clock field.  With no ``initial_row``, row 1 is
    the clean start: skewed pids at their skew value, everyone else at
    clock 1 (seeded corruption has no closed form — pass the engine's
    recorded row instead).
    """
    if initial_row is None:
        skew = dict(spec.clock_skews)
        initial_row = {
            pid: skew.get(pid, 1)
            for pid in range(spec.n)
            if _last_row(spec, pid) >= first_round
        }
    senders = delivered_senders(spec)
    rows: Dict[int, Dict[int, int]] = {first_round: dict(initial_row)}
    for r in range(first_round, spec.rounds):
        nxt: Dict[int, int] = {}
        for i, arrived in senders[r].items():
            heard = [rows[r][j] for j in arrived if j in rows[r]]
            if heard:
                nxt[i] = 1 + max(heard)
        rows[r + 1] = nxt
    return rows


# ---------------------------------------------------------------------------
# The symbolic transcription
# ---------------------------------------------------------------------------


def _check_target_modelable(target: VerifyTarget) -> None:
    if target.name not in SMT_TARGETS:
        raise SmtUnsupportedError(
            f"target {target.name!r} carries non-clock state the SMT "
            f"encoding does not model; supported: {', '.join(SMT_TARGETS)} "
            "(the explicit engine covers every target)"
        )


def _check_modelable(target: VerifyTarget, spec: PlanSpec) -> None:
    _check_target_modelable(target)
    if spec.churn:
        raise SmtUnsupportedError("churn schedules are not modeled by the SMT engine")
    if spec.gst:
        raise SmtUnsupportedError("GST is asynchronous-only; not modeled")


def _symbolic_rows(spec: PlanSpec, z3, solver, start_row: int, symbolic_start: bool):
    """Clock variables/values for rows ``start_row .. spec.rounds``."""
    rows: Dict[int, Dict[int, object]] = {}
    first: Dict[int, object] = {}
    skew = dict(spec.clock_skews)
    for pid in range(spec.n):
        if _last_row(spec, pid) < start_row:
            continue
        if symbolic_start:
            var = z3.Int(f"clock_r{start_row}_p{pid}")
            solver.add(var >= 0)
            first[pid] = var
        else:
            first[pid] = z3.IntVal(skew.get(pid, 1))
    rows[start_row] = first
    senders = delivered_senders(spec)
    for r in range(start_row, spec.rounds):
        nxt: Dict[int, object] = {}
        for i, arrived in senders[r].items():
            heard = [rows[r][j] for j in arrived if j in rows[r]]
            if not heard:
                continue
            acc = heard[0]
            for term in heard[1:]:
                acc = z3.If(term > acc, term, acc)
            nxt[i] = 1 + acc
        rows[r + 1] = nxt
    return rows


def _sigma_atoms(z3, rows, obligations) -> List[object]:
    """Σ violation atoms (clock agreement): any one sat = a violation.

    ``obligations`` is ``[(first, last, faulty, live_by_round)]`` —
    mirrors :class:`~repro.core.problems.ClockAgreementProblem` over a
    window: pairwise agreement each round, +1 rate across consecutive
    rounds, among live non-faulty processes.
    """
    atoms: List[object] = []
    for first, last, faulty, live in obligations:
        for r in range(first, last + 1):
            members = sorted(
                pid for pid in live.get(r, ()) if pid not in faulty and pid in rows.get(r, {})
            )
            for a in range(len(members)):
                for b in range(a + 1, len(members)):
                    atoms.append(rows[r][members[a]] != rows[r][members[b]])
            if r < last:
                for pid in members:
                    if pid in live.get(r + 1, ()) and pid in rows.get(r + 1, {}):
                        atoms.append(rows[r + 1][pid] != rows[r][pid] + 1)
    return atoms


def _reference_obligations(target: VerifyTarget, at: int, spec: PlanSpec):
    """Windows, faulty sets, and liveness from one concrete run.

    These depend only on deliveries and deviations — never on clock
    values — so the reference run fixes them for every symbolic start.
    Returns ``None`` when nothing is obliged (trivially holds).
    """
    from repro.core.rounds import RoundAgreementProtocol
    from repro.histories.stability import stable_windows
    from repro.sync.engine import run_sync

    result = run_sync(
        RoundAgreementProtocol(),
        n=spec.n,
        rounds=spec.rounds,
        fault_plan=spec.fault_plan(),
    )
    full = result.history

    def live_map(first: int, last: int) -> Dict[int, FrozenSet[int]]:
        return {
            r: frozenset(
                pid for pid, clock in full.clocks(r).items() if clock is not None
            )
            for r in range(first, last + 1)
        }

    obligations = []
    if target.name == "fig1":
        history = _post_corruption_suffix(full, spec)
        if history is None:
            return None
        faulty_by_round = history.faulty_by_round()
        for window in stable_windows(history):
            span = window.obligation_span(at)
            if span is None:
                continue
            first, last = span
            faulty = faulty_by_round[last - history.first_round]
            obligations.append((first, last, faulty, live_map(first, last)))
    else:  # thm1: Tentative Definition 1 on the r-suffix, whole-run faulty
        if at >= len(full):
            return None
        first = full.first_round + at
        last = full.first_round + len(full) - 1
        faulty = full.faulty()
        obligations.append((first, last, faulty, live_map(first, last)))
    return obligations or None


def _smt_worker(task: Tuple[str, int, PlanSpec]) -> Dict[str, object]:
    """Solve one plan.  Module-level and pure, for pool + cache."""
    from repro.verify.targets import get_verify_target

    target_name, at, spec = task
    target = get_verify_target(target_name)
    _check_modelable(target, spec)
    z3 = _z3()

    obligations = _reference_obligations(target, at, spec)
    if obligations is None:
        return {"holds": True, "clocks": {}}

    solver = z3.Solver()
    if spec.corruption_rounds:
        start_row, symbolic = max(spec.corruption_rounds), True
    else:
        start_row, symbolic = 1, bool(spec.random_corruption)
    rows = _symbolic_rows(spec, z3, solver, start_row, symbolic)
    atoms = _sigma_atoms(z3, rows, obligations)
    if not atoms:
        return {"holds": True, "clocks": {}}
    outcome = solver.check(z3.Or(atoms))
    if outcome == z3.unsat:
        return {"holds": True, "clocks": {}}
    if outcome != z3.sat:
        raise RuntimeError(f"z3 returned {outcome!r} for {spec!r}")
    model = solver.model()
    clocks = {}
    if symbolic:
        for pid in sorted(rows[start_row]):
            var = rows[start_row][pid]
            value = model.eval(var, model_completion=True)
            clocks[pid] = value.as_long()
    return {"holds": False, "clocks": clocks}


def smt_verify(
    target: VerifyTarget,
    at: int,
    space: PlanSpace,
    jobs: Optional[int] = None,
    max_plans: Optional[int] = None,
) -> VerifyResult:
    """Exhaust ``space`` symbolically.  Same contract as the explicit engine.

    Raises :class:`SmtUnavailableError` without z3 and
    :class:`SmtUnsupportedError` for unmodelable targets/plans — always
    loudly, never a silently partial proof.
    """
    from repro.verify.explicit import enumerate_space

    # Unsupported-target is a property of the request, not the
    # environment: report it even where z3 is absent.
    _check_target_modelable(target)
    if not smt_available():
        raise SmtUnavailableError()
    specs, raw_count, dropped = enumerate_space(
        space, target.symmetric, max_plans=max_plans
    )
    for spec in specs:
        _check_modelable(target, spec)
    outcomes = run_sweep(
        _smt_worker,
        [(target.name, at, spec) for spec in specs],
        jobs,
        cache=f"verify:smt:{target.name}@verify",
    )

    counterexample: Optional[PlanSpec] = None
    counterexample_clocks: Dict[int, int] = {}
    violating = 0
    for spec, outcome in zip(specs, outcomes):
        if outcome["holds"]:
            continue
        violating += 1
        if counterexample is None:
            counterexample = spec
            counterexample_clocks = dict(outcome["clocks"])

    verdict = None
    if counterexample is not None and not counterexample_clocks:
        # Fully concrete plan: the definition-grade oracle replays it.
        verdict = confirm_verdict(target, at, counterexample)
    return VerifyResult(
        target=target.name,
        at=at,
        engine="smt",
        verdict="refuted" if counterexample is not None else "proved",
        raw_plans=raw_count,
        examined=len(specs),
        symmetry_dropped=dropped,
        violating=violating,
        frontier=None,
        counterexample=counterexample,
        counterexample_verdict=verdict,
        counterexample_clocks=counterexample_clocks,
    )
