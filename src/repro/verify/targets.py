"""Verification targets: the claims the proof plane can exhaust.

A verify target reuses an exploration target's protocol and predicates
(:mod:`repro.explore.targets`) but inverts the posture: instead of
*sampling* a large fault-plan space hunting for violations, it walks a
curated small space *exhaustively* and renders a verdict about the
whole space — ``proved`` (no plan violates the claim) or ``refuted``
(with a concrete counterexample plan).

The division of labor per plan mirrors the exploration engine exactly:

- the **streaming** path re-runs the plan with the same streaming
  checker EXPLORE uses (``record_history=False``), plus a frontier
  observer digesting every per-round global state for the
  canonical-state statistics;
- the **confirm** path re-runs the plan recording the history and
  evaluates the definition-grade predicates from
  :mod:`repro.core.solvability`.  *This* is the verdict of record —
  the streaming verdict is cross-checked against it on every single
  plan, and any disagreement is surfaced as a mismatch that blocks
  certification.

``fig1`` and ``thm1`` additionally support re-instantiating the claim
at a caller-chosen stabilization time ``--at R`` (the claims are
parametric in r); the other targets' obligations are structural
(compiler final round, halting patience, churn quiescence) and only
verify at their canonical instantiation.

``fig4`` is deliberately absent: the asynchronous substrate's virtual
time is real-valued and scheduler-driven, so its run space is not the
finite fault-plan product the bounded engines exhaust.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.impossibility import UniformRoundAgreement
from repro.core.problems import ClockAgreementProblem
from repro.core.rounds import RoundAgreementProtocol
from repro.core.solvability import check_definition
from repro.explore.checkers import (
    SpecVerdict,
    StreamingCompilerCheck,
    StreamingFtssClock,
    StreamingTentativeClock,
)
from repro.explore.space import PlanSpace, PlanSpec
from repro.explore.targets import (
    THM1_CANDIDATE,
    THM2_PATIENCE,
    _cap,
    _fig3_instance,
    _post_corruption_suffix,
    get_target,
)
from repro.kernel.events import Observer
from repro.protocols.floodmin import FloodMinConsensus
from repro.sync.engine import run_sync
from repro.workloads.spaces import (
    THM1_SPACE,
    THM2_SPACE,
    VERIFY_FIG1_SMOKE_SPACE,
    VERIFY_FIG1_SPACE,
    VERIFY_FIG3_SPACE,
    VERIFY_UNISON_SPACE,
)

__all__ = [
    "VerifyTarget",
    "VERIFY_TARGETS",
    "get_verify_target",
    "confirm_verdict",
    "streaming_verdict",
]

#: Figure 3's obligation time is the compiled protocol's final round —
#: a structural constant of the FloodMin instance, not a free parameter.
_FIG3_FINAL_ROUND = FloodMinConsensus(
    f=1, proposals=(3, 1, 4, 1)
).final_round


@dataclass(frozen=True)
class VerifyTarget:
    """One provable claim: spaces, canonical instantiation, expectation."""

    name: str
    title: str
    #: The sentence a proof certificate asserts about the space.
    claim: str
    #: ``"proved"`` for the protocol theorems (no plan may violate),
    #: ``"refuted"`` for the impossibility theorems (the space *must*
    #: contain the paper's counterexample shapes).
    expect: str
    #: The canonical stabilization time the claim is instantiated at.
    default_at: int
    #: Whether ``--at R`` may re-instantiate the claim at another time.
    supports_at: bool
    #: Sound pid-relabeling symmetry (same flag the explorer uses).
    symmetric: bool
    space: PlanSpace
    smoke_space: Optional[PlanSpace] = None


VERIFY_TARGETS: Dict[str, VerifyTarget] = {
    "fig1": VerifyTarget(
        name="fig1",
        title="round agreement (Figure 1) ftss-solves clock agreement",
        claim=(
            "no fault plan in the space makes Figure 1 miss the Def 2.4 "
            "obligation at stabilization time r"
        ),
        expect="proved",
        default_at=1,
        supports_at=True,
        symmetric=True,
        space=VERIFY_FIG1_SPACE,
        smoke_space=VERIFY_FIG1_SMOKE_SPACE,
    ),
    "fig3": VerifyTarget(
        name="fig3",
        title="compiled FloodMin (Figure 3) ftss-solves Σ⁺ at final_round",
        claim=(
            "no fault plan in the space makes the compiled FloodMin miss "
            "the Σ⁺ obligation at its final round"
        ),
        expect="proved",
        default_at=_FIG3_FINAL_ROUND,
        supports_at=False,
        symmetric=False,  # per-pid proposals
        space=VERIFY_FIG3_SPACE,
    ),
    "unison": VerifyTarget(
        name="unison",
        title="min-rule unison on a churning ring re-agrees within a diameter",
        claim=(
            "every churn/corruption schedule in the space re-agrees within "
            "a ring diameter of quiescence"
        ),
        expect="proved",
        default_at=0,  # the deadline is spec-dependent (churn quiescence)
        supports_at=False,
        symmetric=False,  # ring adjacency is pid-dependent
        space=VERIFY_UNISON_SPACE,
    ),
    "thm1": VerifyTarget(
        name="thm1",
        title="Tentative Definition 1 is refutable (Theorem 1)",
        claim=(
            "the space contains a fault plan violating Tentative "
            "Definition 1 at r"
        ),
        expect="refuted",
        default_at=THM1_CANDIDATE,
        supports_at=True,
        symmetric=True,
        space=THM1_SPACE,
    ),
    "thm2": VerifyTarget(
        name="thm2",
        title="uniformity is impossible with process failures (Theorem 2)",
        claim=(
            "the space contains a fault plan making the halting rule miss "
            "clock agreement ∧ uniformity"
        ),
        expect="refuted",
        default_at=THM2_PATIENCE + 1,
        supports_at=False,
        symmetric=True,
        space=THM2_SPACE,
    ),
}


def get_verify_target(name: str) -> VerifyTarget:
    try:
        return VERIFY_TARGETS[name]
    except KeyError:
        raise ValueError(
            f"unknown verify target {name!r}; "
            f"available: {', '.join(sorted(VERIFY_TARGETS))}"
        ) from None


def _require_at(target: VerifyTarget, at: int) -> None:
    if at != target.default_at and not target.supports_at:
        raise ValueError(
            f"target {target.name!r} only verifies at its canonical "
            f"stabilization time {target.default_at} (its obligation is "
            "structural, not parametric)"
        )


# ---------------------------------------------------------------------------
# The streaming path, with a frontier observer riding along
# ---------------------------------------------------------------------------


def streaming_verdict(
    target: VerifyTarget,
    at: int,
    spec: PlanSpec,
    frontier: Optional[Observer] = None,
) -> SpecVerdict:
    """EXPLORE's streaming verdict for one plan, plus frontier capture.

    For the observer-based checkers (fig1/thm1/fig3) the frontier
    observer rides on the *same* run; thm2 and unison judge on a
    recorded history (their documented streaming==confirm exception),
    so the frontier is captured by a second observers-only run of the
    same deterministic plan.
    """
    extra = () if frontier is None else (frontier,)
    if target.name == "fig1":
        checker = StreamingFtssClock(stabilization_time=at)
        run_sync(
            RoundAgreementProtocol(),
            n=spec.n,
            rounds=spec.rounds,
            fault_plan=spec.fault_plan(),
            observers=(checker, *extra),
            record_history=False,
        )
        return checker.verdict()
    if target.name == "thm1":
        checker = StreamingTentativeClock(at)
        run_sync(
            RoundAgreementProtocol(),
            n=spec.n,
            rounds=spec.rounds,
            fault_plan=spec.fault_plan(),
            observers=(checker, *extra),
            record_history=False,
        )
        return checker.verdict()
    if target.name == "fig3":
        pi, plus, valid = _fig3_instance()
        checker = StreamingCompilerCheck(
            final_round=pi.final_round, valid_proposals=valid
        )
        run_sync(
            plus,
            n=spec.n,
            rounds=spec.rounds,
            fault_plan=spec.fault_plan(),
            observers=(checker, *extra),
            record_history=False,
        )
        return checker.verdict()
    if target.name == "thm2":
        verdict = get_target("thm2").streaming(spec)
        if frontier is not None:
            run_sync(
                UniformRoundAgreement(patience=THM2_PATIENCE),
                n=spec.n,
                rounds=spec.rounds,
                fault_plan=spec.fault_plan(),
                observers=(frontier,),
                record_history=False,
            )
        return verdict
    if target.name == "unison":
        from repro.kernel.topology import RingTopology
        from repro.protocols.unison import MinUnison

        verdict = get_target("unison").streaming(spec)
        if frontier is not None:
            run_sync(
                MinUnison(),
                n=spec.n,
                rounds=spec.rounds,
                fault_plan=spec.fault_plan(),
                observers=(frontier,),
                record_history=False,
                topology=RingTopology(spec.n),
            )
        return verdict
    raise ValueError(f"target {target.name!r} has no streaming path")


# ---------------------------------------------------------------------------
# The confirm path — the verdict of record
# ---------------------------------------------------------------------------


def confirm_verdict(target: VerifyTarget, at: int, spec: PlanSpec) -> SpecVerdict:
    """The definition-grade verdict for one plan.

    At the canonical instantiation this *is* the exploration target's
    confirm path — byte-identical checker names and violation strings,
    so verify counterexamples are EXPLORE artifacts verbatim.  The
    parametric targets (fig1/thm1) additionally accept any ``at``.
    """
    _require_at(target, at)
    if at == target.default_at:
        return get_target(target.name).confirm(spec)
    if target.name == "fig1":
        result = run_sync(
            RoundAgreementProtocol(),
            n=spec.n,
            rounds=spec.rounds,
            fault_plan=spec.fault_plan(),
        )
        history = _post_corruption_suffix(result.history, spec)
        checker = f"confirm-ftss-clock@{at}"
        if history is None:
            return SpecVerdict(checker=checker, holds=True)
        verdict = check_definition("ftss", history, ClockAgreementProblem(), at)
        return SpecVerdict(
            checker=checker,
            holds=verdict.holds,
            violations=_cap(verdict.violations),
        )
    if target.name == "thm1":
        result = run_sync(
            RoundAgreementProtocol(),
            n=spec.n,
            rounds=spec.rounds,
            fault_plan=spec.fault_plan(),
        )
        sigma = ClockAgreementProblem()
        tentative = check_definition("tentative", result.history, sigma, at)
        ftss = check_definition("ftss", result.history, sigma, 1)
        return SpecVerdict(
            checker=f"confirm-tentative@{at}",
            holds=tentative.holds,
            violations=_cap(tentative.violations),
            details=(("ftss_at_1_holds", ftss.holds),),
        )
    raise AssertionError("unreachable: _require_at vetted the target")
