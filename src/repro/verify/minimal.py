"""Minimality certification: EXPLORE's shrunk artifacts, proved minimal.

The delta-debugging shrinker (:mod:`repro.explore.shrink`) descends
greedily, so what it ships is *locally* minimal: no single shrink step
preserves the violation.  This module upgrades that to a proof: it
enumerates the artifact spec's **entire** strictly-smaller shrink
neighborhood — the transitive closure of the shrinker's move set, i.e.
every spec any shrink descent could ever reach — replays each through
the target's definition-grade confirm oracle, and certifies the
artifact *provably minimal* iff none violates.

This is exactly the "turn 'found nothing' into 'provably nothing'"
posture applied to counterexamples themselves: the exploration engine
found and shrank a violation; the proof plane exhausts the residual
smaller-plan space to show the shrinker left nothing on the table.

Per-neighbor confirm verdicts are memoized under the
``verify:minimal:<target>@verify`` cache namespace, so re-certifying an
unchanged artifact is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.base import run_sweep
from repro.explore.artifacts import Artifact, replay
from repro.explore.engine import _confirm_worker
from repro.explore.shrink import neighborhood
from repro.explore.space import PlanSpec
from repro.verify.certificates import Certificate

__all__ = ["MinimalityResult", "certify_minimal"]


@dataclass
class MinimalityResult:
    """What exhausting an artifact's shrink neighborhood established."""

    artifact: Artifact
    #: Did the artifact itself replay to its stored verdict?
    reproduced: bool
    #: Size of the strictly-smaller closure that was exhausted.
    neighborhood_size: int
    #: Neighbors that still violate (provably minimal iff empty and
    #: the artifact reproduced).
    violating: List[PlanSpec]

    @property
    def minimal(self) -> bool:
        return self.reproduced and not self.violating

    def certificate(self) -> Certificate:
        """Render as a minimality certificate (raises unless minimal)."""
        if not self.minimal:
            raise ValueError(
                f"artifact for {self.artifact.target!r} is not provably "
                f"minimal ({len(self.violating)} smaller violating specs); "
                "no certificate to issue"
            )
        return Certificate(
            kind="minimality",
            target=self.artifact.target,
            claim=(
                "no spec in the artifact's strictly-smaller shrink "
                "neighborhood violates the target — the counterexample is "
                "minimal with respect to the shrinker's move set"
            ),
            at=0,  # the obligation time lives in the embedded artifact's target
            engine="explicit",
            cardinality={
                "raw_plans": self.neighborhood_size,
                "examined": self.neighborhood_size,
                "symmetry_dropped": 0,
                "violating": len(self.violating),
            },
            artifact=self.artifact.to_jsonable(),
            neighborhood={
                "size": self.neighborhood_size,
                "violating": len(self.violating),
            },
        )


def certify_minimal(
    artifact: Artifact,
    jobs: Optional[int] = None,
    limit: int = 20_000,
) -> MinimalityResult:
    """Exhaust ``artifact.spec``'s shrink closure through the confirm oracle.

    Two obligations, both discharged by definition-grade replays:

    1. the artifact itself must reproduce (same holds flag and
       violation strings — the standard EXPLORE replay contract);
    2. every strictly-smaller spec in the shrink closure must *hold*.
    """
    outcome = replay(artifact)
    closure = neighborhood(artifact.spec, limit=limit)
    verdicts = run_sweep(
        _confirm_worker,
        [(artifact.target, spec) for spec in closure],
        jobs,
        cache=f"verify:minimal:{artifact.target}@verify",
    )
    violating: List[Tuple[PlanSpec]] = [
        spec for spec, verdict in zip(closure, verdicts) if not verdict.holds
    ]
    return MinimalityResult(
        artifact=artifact,
        reproduced=outcome.reproduced,
        neighborhood_size=len(closure),
        violating=violating,
    )
