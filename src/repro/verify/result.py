"""Shared result types for the verification plane.

A :class:`VerifyResult` is what both engines return from one bounded
verification: the claim that was checked, the space cardinality that
was actually exhausted, the verdict (``proved`` — *no* plan in the
space violates the claim — or ``refuted``, with the first violating
plan as a replayable counterexample), and, on the explicit-state
engine, the :class:`FrontierStats` of the canonical-state walk.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.explore.checkers import SpecVerdict
from repro.explore.space import PlanSpec

__all__ = ["FrontierStats", "VerifyResult", "frontier_from_digests"]


@dataclass(frozen=True)
class FrontierStats:
    """The canonical-state frontier of one explicit-state verification.

    Every per-round global state encountered anywhere in the fault-plan
    × execution walk is reduced to a canonical digest and interned;
    ``states_visited`` counts arrivals, ``states_distinct`` the interned
    survivors, and ``digest`` is a content hash over the *sorted
    distinct set* — independent of sweep order and ``--jobs``, so a
    proof certificate carrying it can be re-checked bit-for-bit.
    """

    states_visited: int
    states_distinct: int
    digest: str

    @property
    def dedup_hits(self) -> int:
        return self.states_visited - self.states_distinct

    @property
    def dedup_hit_ratio(self) -> float:
        if not self.states_visited:
            return 0.0
        return self.dedup_hits / self.states_visited

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "states_visited": self.states_visited,
            "states_distinct": self.states_distinct,
            "dedup_hits": self.dedup_hits,
            "digest": self.digest,
        }

    @staticmethod
    def from_jsonable(data: Dict[str, Any]) -> "FrontierStats":
        return FrontierStats(
            states_visited=int(data["states_visited"]),
            states_distinct=int(data["states_distinct"]),
            digest=str(data["digest"]),
        )


def frontier_from_digests(digests: Iterable[str]) -> FrontierStats:
    """Intern a stream of per-round state digests into frontier stats."""
    visited = 0
    distinct = set()
    for digest in digests:
        visited += 1
        distinct.add(digest)
    content = hashlib.sha256("\n".join(sorted(distinct)).encode("ascii"))
    return FrontierStats(
        states_visited=visited,
        states_distinct=len(distinct),
        digest=content.hexdigest(),
    )


@dataclass
class VerifyResult:
    """Everything one bounded verification established."""

    target: str
    #: The stabilization time the claim was instantiated at.
    at: int
    engine: str
    #: ``"proved"`` (no plan in the space violates) or ``"refuted"``.
    verdict: str
    #: Plans the space enumerates before symmetry dedup.
    raw_plans: int
    #: Plans actually judged (after dedup) — the exhausted set.
    examined: int
    #: Plans dropped as symmetric images of an examined one.
    symmetry_dropped: int
    #: How many examined plans violated the claim (0 for a proof).
    violating: int = 0
    #: Canonical-state walk statistics (explicit engine only).
    frontier: Optional[FrontierStats] = None
    #: The first violating plan, in enumeration order.
    counterexample: Optional[PlanSpec] = None
    #: The definition-grade verdict on the counterexample.
    counterexample_verdict: Optional[SpecVerdict] = None
    #: SMT refutations carry the initial clocks the solver exhibited
    #: (pid → clock); empty for concrete-initial-state counterexamples.
    counterexample_clocks: Dict[int, int] = field(default_factory=dict)
    #: (spec, streaming verdict, confirm verdict) disagreements — any
    #: entry here blocks certification.
    mismatches: List[Tuple[PlanSpec, SpecVerdict, SpecVerdict]] = field(
        default_factory=list
    )

    @property
    def proved(self) -> bool:
        return self.verdict == "proved"

    @property
    def refuted(self) -> bool:
        return self.verdict == "refuted"
