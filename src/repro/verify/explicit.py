"""The explicit-state engine: exhaust the space, intern every state.

Pure Python, always available.  The engine enumerates *every* fault
plan in the target's :class:`~repro.explore.space.PlanSpace` (after
symmetry dedup, exactly the explorer's), judges each plan on **both**
of EXPLORE's codepaths — the streaming checker and the definition-grade
confirm oracle — and hash-conses every per-round global state it meets
along the way into a canonical frontier.  The outcome:

- ``proved``: no plan violates; the certificate carries the space
  cardinality and the order-independent frontier digest;
- ``refuted``: the first violating plan (enumeration order) comes back
  as a counterexample whose confirm verdict is byte-identical to what
  EXPLORE would put in a replay artifact.

The confirm path is the verdict of record on *every* plan — not just
streaming-flagged ones, as in EXPLORE's sampling posture — because a
proof must not inherit a streaming checker's blind spots.  Any
streaming/confirm disagreement is returned as a mismatch and blocks
certification.

Per-plan work is memoized through the content-addressed run cache
under the ``verify:<target>@verify`` namespace, so re-proving an
unchanged space costs lookups, and ``python -m repro.cache stats``
reports the proof plane's traffic separately from EXPLORE's.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.base import run_sweep
from repro.explore.space import PlanSpace, PlanSpec, dedupe
from repro.kernel.events import Observer
from repro.verify.result import VerifyResult, frontier_from_digests
from repro.verify.targets import (
    VerifyTarget,
    confirm_verdict,
    streaming_verdict,
)

__all__ = [
    "FrontierObserver",
    "MAX_EXPLICIT_PLANS",
    "SpaceTooLargeError",
    "enumerate_space",
    "explicit_verify",
]

#: Ceiling on plans one explicit verification will walk.  Bounded model
#: checking earns the word "provably" only when the space is genuinely
#: exhausted, so an over-budget space is an error, never a sample.
MAX_EXPLICIT_PLANS = 20_000


class SpaceTooLargeError(ValueError):
    """The space exceeds what the explicit engine will exhaust."""


def _canon(value: Any) -> str:
    """A deterministic textual form for state values.

    ``repr`` alone is not canonical for unordered containers (set and
    frozenset iteration order follows hash seeds for str members), so
    mappings and sets are rendered with sorted members.
    """
    if isinstance(value, dict):
        items = ", ".join(
            f"{_canon(k)}: {_canon(value[k])}" for k in sorted(value, key=repr)
        )
        return "{" + items + "}"
    if isinstance(value, (set, frozenset)):
        return "{" + ", ".join(sorted(_canon(item) for item in value)) + "}"
    if isinstance(value, (list, tuple)):
        return "(" + ", ".join(_canon(item) for item in value) + ")"
    return repr(value)


def state_digest(snapshots: Any) -> str:
    """Canonical digest of one global state (pid → state-or-crashed)."""
    parts = []
    for pid in sorted(snapshots):
        state = snapshots[pid]
        parts.append(f"{pid}=" + ("<crashed>" if state is None else _canon(state)))
    content = hashlib.sha256("|".join(parts).encode("utf-8"))
    return content.hexdigest()[:16]


class FrontierObserver(Observer):
    """Digests every per-round global state a run passes through.

    The digests — not the states — ride back to the parent, which
    interns them across *all* plans of the verification: two plans that
    steer the system through the same global state collapse to one
    frontier entry, and the dedup ratio measures how much of the
    fault-plan product re-treads shared ground.
    """

    def __init__(self) -> None:
        self.digests: List[str] = []

    def on_round_start(self, round_no, snapshots) -> None:
        self.digests.append(state_digest(snapshots))

    def on_run_end(self, time, final_states) -> None:
        # The post-final-round state never gets a round row; digest it
        # here so the frontier covers the run end-to-end.
        self.digests.append(state_digest(final_states))


def _verify_worker(task: Tuple[str, int, PlanSpec]) -> Dict[str, Any]:
    """Judge one plan on both codepaths and capture its frontier.

    Module-level and pure in its task, as :func:`run_sweep`'s fork pool
    and the run cache both require.
    """
    from repro.verify.targets import get_verify_target

    target_name, at, spec = task
    target = get_verify_target(target_name)
    frontier = FrontierObserver()
    streaming = streaming_verdict(target, at, spec, frontier)
    confirm = confirm_verdict(target, at, spec)
    return {
        "streaming": streaming,
        "confirm": confirm,
        "digests": tuple(frontier.digests),
    }


def enumerate_space(
    space: PlanSpace,
    symmetric: bool,
    max_plans: Optional[int] = None,
) -> Tuple[List[PlanSpec], int, int]:
    """``(kept_specs, raw_count, symmetry_dropped)`` for the whole space.

    Raises :class:`SpaceTooLargeError` when the raw enumeration exceeds
    the ceiling — exhaustiveness is the contract, so there is no
    sampling fallback.
    """
    limit = MAX_EXPLICIT_PLANS if max_plans is None else max_plans
    raw = list(itertools.islice(space.enumerate_plans(), limit + 1))
    if len(raw) > limit:
        raise SpaceTooLargeError(
            f"space enumerates more than {limit} plans; the explicit "
            "engine only proves claims over spaces it can exhaust — "
            "shrink the space (or raise max_plans if you really mean it)"
        )
    kept, dropped = dedupe(raw, symmetric=symmetric)
    return kept, len(raw), dropped


def explicit_verify(
    target: VerifyTarget,
    at: int,
    space: PlanSpace,
    jobs: Optional[int] = None,
    max_plans: Optional[int] = None,
) -> VerifyResult:
    """Exhaust ``space`` for ``target``'s claim at stabilization time ``at``."""
    specs, raw_count, dropped = enumerate_space(
        space, target.symmetric, max_plans=max_plans
    )
    outcomes = run_sweep(
        _verify_worker,
        [(target.name, at, spec) for spec in specs],
        jobs,
        cache=f"verify:{target.name}@verify",
    )

    digests: List[str] = []
    mismatches = []
    counterexample: Optional[PlanSpec] = None
    counterexample_verdict = None
    violating = 0
    for spec, outcome in zip(specs, outcomes):
        digests.extend(outcome["digests"])
        streaming, confirm = outcome["streaming"], outcome["confirm"]
        if streaming.holds != confirm.holds:
            mismatches.append((spec, streaming, confirm))
        if not confirm.holds:
            violating += 1
            if counterexample is None:
                counterexample = spec
                counterexample_verdict = confirm

    return VerifyResult(
        target=target.name,
        at=at,
        engine="explicit",
        verdict="refuted" if counterexample is not None else "proved",
        raw_plans=raw_count,
        examined=len(specs),
        symmetry_dropped=dropped,
        violating=violating,
        frontier=frontier_from_digests(digests),
        counterexample=counterexample,
        counterexample_verdict=counterexample_verdict,
        mismatches=mismatches,
    )
