"""CLI front-end for the verification plane.

Usage::

    python -m repro.verify prove  TARGET [--at R] [--engine E] [--space S]
                                         [--n N] [--k K] [--jobs J]
                                         [--out DIR] [--no-cache]
    python -m repro.verify refute TARGET [same flags]
    python -m repro.verify certify [ARTIFACT ...] [--jobs J] [--out DIR]
                                   [--no-cache]
    python -m repro.verify recheck CERTIFICATE [--jobs J] [--no-cache]
    python -m repro.verify list

``prove`` exits 0 iff the claim holds on the *entire* space; ``refute``
exits 0 iff a counterexample exists — and replays it through the
definition-grade confirm path, requiring byte-identical violations,
before believing it.  Both write a certificate when ``--out`` is given.
``--engine both`` runs the explicit and SMT engines and demands verdict
agreement (the conformance gate CI runs where z3 is installed).

``certify`` proves EXPLORE-shrunk counterexamples *provably minimal*:
with no arguments it regenerates the thm1/thm2 findings exactly as the
explore smoke does and certifies both; with artifact paths it certifies
those.

``recheck`` re-verifies a saved certificate *from its own description*:
a proof certificate has its space re-enumerated and must reproduce the
certified verdict, cardinality, and frontier digest bit-for-bit; a
counterexample certificate must replay its embedded artifact
byte-identically (and re-refute its space); a minimality certificate
has the shrink neighborhood re-exhausted.  Any divergence — including
a tampered certificate — exits 1.

Exit codes: 0 success, 1 wrong verdict / not minimal / mismatch,
2 usage, 3 capability (SMT requested but z3 unavailable).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List, Optional

import repro.cache
from repro.explore.artifacts import load_artifact, replay
from repro.verify import (
    SmtUnavailableError,
    SmtUnsupportedError,
    VERIFY_TARGETS,
    cross_check,
    get_verify_target,
    verify,
)
from repro.verify.certificates import (
    certificate_from_result,
    load_certificate,
    save_certificate,
)
from repro.verify.minimal import certify_minimal
from repro.verify.result import VerifyResult

#: Exit code for "the requested capability is absent" (z3 not installed).
EXIT_CAPABILITY = 3

#: Budgets that exhaustively enumerate the thm1/thm2 spaces (matching
#: the explore smoke, so ``certify`` regenerates the same artifacts).
CERTIFY_THM1_BUDGET = 96
CERTIFY_THM2_BUDGET = 64


def _summarize(result: VerifyResult) -> str:
    lines = [
        f"[{result.target}@{result.at}] {result.engine}: {result.verdict} — "
        f"{result.raw_plans} plans, {result.symmetry_dropped} symmetric, "
        f"{result.examined} examined, {result.violating} violating, "
        f"{len(result.mismatches)} checker mismatch(es)"
    ]
    if result.frontier is not None:
        f = result.frontier
        lines.append(
            f"  frontier: {f.states_visited} states visited, "
            f"{f.states_distinct} distinct (dedup {f.dedup_hit_ratio:.0%}), "
            f"digest {f.digest[:16]}"
        )
    if result.counterexample is not None:
        lines.append(f"  counterexample: {result.counterexample.to_jsonable()}")
        if result.counterexample_clocks:
            lines.append(
                f"  solver-exhibited initial clocks: {result.counterexample_clocks}"
            )
        if result.counterexample_verdict is not None:
            for violation in result.counterexample_verdict.violations[:3]:
                lines.append(f"      {violation}")
    for spec, streaming, confirm in result.mismatches:
        lines.append(
            f"  ! streaming/confirm disagree on {spec.to_jsonable()}: "
            f"streaming holds={streaming.holds}, confirm holds={confirm.holds}"
        )
    return "\n".join(lines)


def _resolve_space(target_name: str, which: str):
    target = get_verify_target(target_name)
    if which == "default":
        return target.space
    if target.smoke_space is None:
        raise SystemExit(
            f"target {target_name!r} has no smoke space; use --space default"
        )
    return target.smoke_space


def _run_engines(args):
    """Run the requested engine(s); returns (results, space)."""
    space = _resolve_space(args.target, args.space)
    engines = ("explicit", "smt") if args.engine == "both" else (args.engine,)
    results = []
    for engine in engines:
        results.append(
            verify(
                args.target,
                n=args.n,
                k=args.k,
                space=space,
                at=args.at,
                engine=engine,
                jobs=args.jobs,
                max_plans=args.max_plans,
            )
        )
    return results, space


def _prove_or_refute(args, want: str) -> int:
    try:
        results, space = _run_engines(args)
    except SmtUnavailableError as exc:
        print(f"SKIPPED (capability): {exc}", file=sys.stderr)
        return EXIT_CAPABILITY
    except SmtUnsupportedError as exc:
        print(f"unsupported: {exc}", file=sys.stderr)
        return 2
    target = get_verify_target(args.target)
    failures: List[str] = []
    for result in results:
        print(_summarize(result))
        if result.mismatches:
            failures.append(
                f"{result.engine}: streaming/confirm mismatch on "
                f"{len(result.mismatches)} plan(s)"
            )
        if result.verdict != want:
            failures.append(
                f"{result.engine}: expected {want!r}, got {result.verdict!r}"
            )
    if len(results) == 2 and results[0].verdict != results[1].verdict:
        failures.append(
            f"engine disagreement: explicit={results[0].verdict!r} "
            f"smt={results[1].verdict!r}"
        )
    # A refutation is only believed once the counterexample replays
    # byte-identically through the definition-grade oracle (at the same
    # stabilization time the refutation was instantiated at).
    if want == "refuted":
        from repro.verify.targets import confirm_verdict

        for result in results:
            if result.counterexample is None:
                continue
            if result.counterexample_clocks:
                continue  # solver-exhibited start: no seeded spec replays it
            stored = result.counterexample_verdict
            rerun = confirm_verdict(target, result.at, result.counterexample)
            if (
                stored is None
                or rerun.holds != stored.holds
                or tuple(rerun.violations) != tuple(stored.violations)
            ):
                failures.append(
                    f"{result.engine}: counterexample did not replay to the "
                    "same confirm verdict"
                )
            else:
                print(
                    f"  counterexample replayed byte-identically "
                    f"({rerun.checker})"
                )
    if args.out:
        out_dir = pathlib.Path(args.out)
        for result in results:
            path = save_certificate(
                out_dir, certificate_from_result(target, result, space)
            )
            print(f"  wrote {path}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_prove(args) -> int:
    return _prove_or_refute(args, "proved")


def _cmd_refute(args) -> int:
    return _prove_or_refute(args, "refuted")


def _certify_one(artifact, jobs, out_dir) -> List[str]:
    failures: List[str] = []
    outcome = replay(artifact)
    if not outcome.reproduced:
        failures.append(f"{artifact.target}: artifact replay did not reproduce")
    check = cross_check(artifact)
    if not check.consistent:
        failures.append(
            f"{artifact.target}: verify-model cross-check inconsistent "
            f"(reproduced={check.reproduced}, streaming holds="
            f"{check.streaming.holds}, confirm holds={check.confirm.holds})"
        )
    result = certify_minimal(artifact, jobs=jobs)
    print(
        f"[{artifact.target}] neighborhood of {result.neighborhood_size} "
        f"strictly-smaller spec(s) exhausted: "
        f"{len(result.violating)} violating — "
        + ("PROVABLY MINIMAL" if result.minimal else "NOT MINIMAL")
    )
    if not result.minimal:
        for spec in result.violating[:3]:
            print(f"    smaller violating spec: {spec.to_jsonable()}")
        failures.append(f"{artifact.target}: artifact is not provably minimal")
    elif out_dir is not None:
        path = save_certificate(out_dir, result.certificate())
        print(f"  wrote {path}")
    return failures


def _cmd_certify(args) -> int:
    out_dir = pathlib.Path(args.out) if args.out else None
    failures: List[str] = []
    if args.artifacts:
        artifacts = [load_artifact(path) for path in args.artifacts]
    else:
        # Regenerate the impossibility findings the explore smoke ships.
        from repro.explore.__main__ import _finding_artifact
        from repro.explore.engine import explore

        artifacts = []
        for name, budget in (
            ("thm1", CERTIFY_THM1_BUDGET),
            ("thm2", CERTIFY_THM2_BUDGET),
        ):
            result = explore(
                name, budget=budget, seed=args.seed, jobs=args.jobs, mode="enumerate"
            )
            if not result.findings:
                failures.append(f"{name}: exploration found no counterexample")
                continue
            artifacts.append(_finding_artifact(result, 0))
    for artifact in artifacts:
        failures.extend(_certify_one(artifact, args.jobs, out_dir))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _recheck_artifact(artifact) -> List[str]:
    """Replay an embedded artifact through both oracles; all failures."""
    failures: List[str] = []
    outcome = replay(artifact)
    if not outcome.reproduced:
        failures.append(
            f"{artifact.target}: embedded artifact did not replay "
            "byte-identically"
        )
    check = cross_check(artifact)
    if not check.consistent:
        failures.append(
            f"{artifact.target}: verify-model cross-check inconsistent "
            f"(reproduced={check.reproduced}, streaming holds="
            f"{check.streaming.holds}, confirm holds={check.confirm.holds})"
        )
    return failures


def _recheck_space(certificate, jobs) -> List[str]:
    """Re-enumerate a proof/counterexample certificate's own space."""
    from repro.explore.space import PlanSpace

    if certificate.space is None:
        return [f"{certificate.kind} certificate carries no space to re-enumerate"]
    space = PlanSpace.from_jsonable(certificate.space)
    result = verify(
        certificate.target,
        space=space,
        at=certificate.at,
        engine=certificate.engine,
        jobs=jobs,
    )
    print(_summarize(result))
    failures: List[str] = []
    want = "proved" if certificate.kind == "proof" else "refuted"
    if result.verdict != want:
        failures.append(f"verdict {result.verdict!r} != certified {want!r}")
    for name, certified in sorted(certificate.cardinality.items()):
        fresh = getattr(result, name, None)
        if fresh != certified:
            failures.append(f"cardinality {name}: fresh {fresh} != certified {certified}")
    if certificate.frontier is not None:
        if result.frontier is None:
            failures.append("certificate carries a frontier but the fresh run has none")
        else:
            fresh_frontier = result.frontier.to_jsonable()
            for field_name in ("states_visited", "states_distinct", "digest"):
                certified = certificate.frontier.get(field_name)
                fresh = fresh_frontier.get(field_name)
                if certified != fresh:
                    failures.append(
                        f"frontier {field_name}: fresh {fresh!r} != "
                        f"certified {certified!r}"
                    )
    return failures


def _cmd_recheck(args) -> int:
    try:
        certificate = load_certificate(args.certificate)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"recheck: cannot load certificate: {exc}", file=sys.stderr)
        return 1
    print(
        f"[{certificate.target}@{certificate.at}] rechecking "
        f"{certificate.kind} certificate ({certificate.engine} engine)"
    )
    failures: List[str] = []
    try:
        if certificate.kind == "minimality":
            artifact = certificate.embedded_artifact
            if artifact is None:
                failures.append("minimality certificate has no embedded artifact")
            else:
                failures.extend(_recheck_artifact(artifact))
                result = certify_minimal(artifact, jobs=args.jobs)
                if not result.minimal:
                    failures.append("artifact is no longer provably minimal")
                certified_size = certificate.neighborhood.get("size")
                if (
                    certified_size is not None
                    and result.neighborhood_size != certified_size
                ):
                    failures.append(
                        f"shrink neighborhood size {result.neighborhood_size} "
                        f"!= certified {certified_size}"
                    )
        else:
            failures.extend(_recheck_space(certificate, args.jobs))
            if certificate.kind == "counterexample":
                artifact = certificate.embedded_artifact
                if artifact is not None:
                    failures.extend(_recheck_artifact(artifact))
                elif not certificate.counterexample_clocks:
                    failures.append(
                        "counterexample certificate has neither an embedded "
                        "artifact nor solver-exhibited clocks"
                    )
    except SmtUnavailableError as exc:
        print(f"SKIPPED (capability): {exc}", file=sys.stderr)
        return EXIT_CAPABILITY
    except (ValueError, KeyError) as exc:
        failures.append(f"certificate does not describe a checkable claim: {exc}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("recheck: certificate reproduces")
    return 0


def _cmd_list(_args) -> int:
    from repro.verify.smt import SMT_TARGETS, smt_available

    print(f"engines: explicit (always), smt ({'z3 ' if smt_available() else 'z3 NOT '}importable)")
    for name in sorted(VERIFY_TARGETS):
        target = VERIFY_TARGETS[name]
        smt = "explicit+smt" if name in SMT_TARGETS else "explicit   "
        print(
            f"{name:6s} [expect {target.expect:7s}] [{smt}] "
            f"at={target.default_at} {target.title}"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Bounded verification over entire fault-plan spaces.",
    )
    sub = parser.add_subparsers(dest="command")

    def _verify_flags(p):
        p.add_argument("target", choices=sorted(VERIFY_TARGETS))
        p.add_argument("--at", type=int, default=None, help="stabilization time")
        p.add_argument(
            "--engine", choices=("explicit", "smt", "both"), default="explicit"
        )
        p.add_argument(
            "--space", choices=("default", "smoke"), default="default"
        )
        p.add_argument("--n", type=int, default=None, help="resize: system size")
        p.add_argument("--k", type=int, default=None, help="resize: bounded horizon")
        p.add_argument("--jobs", type=int, default=None)
        p.add_argument("--max-plans", type=int, default=None)
        p.add_argument("--out", default=None, help="write certificates here")
        p.add_argument("--no-cache", action="store_true")

    prove_p = sub.add_parser("prove", help="prove absence of violations")
    _verify_flags(prove_p)
    prove_p.set_defaults(func=_cmd_prove)

    refute_p = sub.add_parser("refute", help="prove a counterexample exists")
    _verify_flags(refute_p)
    refute_p.set_defaults(func=_cmd_refute)

    certify_p = sub.add_parser(
        "certify", help="prove shrunk counterexample artifacts minimal"
    )
    certify_p.add_argument(
        "artifacts", nargs="*", help="artifact paths (default: regenerate thm1+thm2)"
    )
    certify_p.add_argument("--seed", type=int, default=0)
    certify_p.add_argument("--jobs", type=int, default=None)
    certify_p.add_argument("--out", default=None, help="write certificates here")
    certify_p.add_argument("--no-cache", action="store_true")
    certify_p.set_defaults(func=_cmd_certify)

    recheck_p = sub.add_parser(
        "recheck", help="re-verify a saved certificate from its own description"
    )
    recheck_p.add_argument("certificate", help="path to a certificate JSON")
    recheck_p.add_argument("--jobs", type=int, default=None)
    recheck_p.add_argument("--no-cache", action="store_true")
    recheck_p.set_defaults(func=_cmd_recheck)

    list_p = sub.add_parser("list", help="list verify targets and engines")
    list_p.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if getattr(args, "no_cache", False):
        repro.cache.disable()
    started = time.monotonic()
    code = args.func(args)
    print(f"({time.monotonic() - started:.1f}s)")
    return code


if __name__ == "__main__":
    sys.exit(main())
