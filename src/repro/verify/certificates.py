"""Verdict certificates: replayable records of what was proved.

Every verification verdict can be rendered as a **certificate** — a
canonical-JSON document that pins what was claimed, over which space,
by which engine, and what it would take to re-check it:

- a **proof** certificate carries the space (re-enumerable), its
  cardinality after symmetry dedup, and the explicit engine's
  order-independent frontier digest — re-running the verification must
  reproduce all three;
- a **counterexample** certificate embeds a violating plan as a full
  EXPLORE :class:`~repro.explore.artifacts.Artifact` — byte-identical
  to what ``python -m repro.explore`` would write, so
  ``python -m repro.explore replay`` replays it with no verify-specific
  tooling;
- a **minimality** certificate (see :mod:`repro.verify.minimal`)
  records that the *entire* strictly-smaller shrink neighborhood of a
  counterexample was exhausted and contained no violation.

Serialization matches the artifact conventions: sorted keys, fixed
indentation, no timestamps, no host or parallelism information — the
same verification yields byte-identical certificates regardless of
``--jobs``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.explore.artifacts import Artifact
from repro.explore.space import PlanSpace
from repro.verify.result import FrontierStats, VerifyResult
from repro.verify.targets import VerifyTarget

__all__ = [
    "CERT_SCHEMA_VERSION",
    "Certificate",
    "certificate_from_result",
    "load_certificate",
    "render_certificate",
    "save_certificate",
]

#: Bumped on any incompatible change to the certificate layout.
CERT_SCHEMA_VERSION = 1

_KINDS = ("proof", "counterexample", "minimality")


@dataclass(frozen=True)
class Certificate:
    """One verification verdict, rendered for replay."""

    kind: str
    target: str
    claim: str
    at: int
    engine: str
    #: The exhausted space (re-enumerable), absent for minimality
    #: certificates (their space is the artifact's shrink neighborhood).
    space: Optional[Dict[str, Any]] = None
    #: ``{"raw_plans", "examined", "symmetry_dropped", "violating"}``.
    cardinality: Dict[str, int] = field(default_factory=dict)
    #: Explicit-engine frontier statistics (absent on SMT verdicts).
    frontier: Optional[Dict[str, Any]] = None
    #: The embedded EXPLORE artifact, for counterexample/minimality.
    artifact: Optional[Dict[str, Any]] = None
    #: SMT-exhibited initial clocks (pid → clock), when the violating
    #: assignment is not a seeded draw the spec can reproduce.
    counterexample_clocks: Dict[str, int] = field(default_factory=dict)
    #: Minimality evidence: ``{"size": ..., "violating": 0}``.
    neighborhood: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown certificate kind {self.kind!r}")

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "schema_version": CERT_SCHEMA_VERSION,
            "kind": self.kind,
            "target": self.target,
            "claim": self.claim,
            "at": self.at,
            "engine": self.engine,
            "space": self.space,
            "cardinality": dict(self.cardinality),
            "frontier": self.frontier,
            "artifact": self.artifact,
            "counterexample_clocks": dict(self.counterexample_clocks),
            "neighborhood": dict(self.neighborhood),
        }

    @staticmethod
    def from_jsonable(data: Dict[str, Any]) -> "Certificate":
        version = data.get("schema_version")
        if version != CERT_SCHEMA_VERSION:
            raise ValueError(
                f"certificate schema version {version!r} unsupported "
                f"(expected {CERT_SCHEMA_VERSION})"
            )
        return Certificate(
            kind=str(data["kind"]),
            target=str(data["target"]),
            claim=str(data["claim"]),
            at=int(data["at"]),
            engine=str(data["engine"]),
            space=data.get("space"),
            cardinality={k: int(v) for k, v in data.get("cardinality", {}).items()},
            frontier=data.get("frontier"),
            artifact=data.get("artifact"),
            counterexample_clocks={
                str(k): int(v)
                for k, v in data.get("counterexample_clocks", {}).items()
            },
            neighborhood={
                k: int(v) for k, v in data.get("neighborhood", {}).items()
            },
        )

    def filename(self) -> str:
        return f"{self.target}-{self.kind}-at{self.at}.json"

    @property
    def embedded_artifact(self) -> Optional[Artifact]:
        if self.artifact is None:
            return None
        return Artifact.from_jsonable(self.artifact)

    @property
    def embedded_frontier(self) -> Optional[FrontierStats]:
        if self.frontier is None:
            return None
        return FrontierStats.from_jsonable(
            {k: v for k, v in self.frontier.items() if k != "dedup_hits"}
        )


def certificate_from_result(
    target: VerifyTarget, result: VerifyResult, space: PlanSpace
) -> Certificate:
    """Render a finished verification as a certificate.

    A refuted verdict yields a counterexample certificate whose embedded
    artifact is exactly what EXPLORE would have written for the same
    spec and confirm verdict.
    """
    cardinality = {
        "raw_plans": result.raw_plans,
        "examined": result.examined,
        "symmetry_dropped": result.symmetry_dropped,
        "violating": result.violating,
    }
    frontier = None if result.frontier is None else result.frontier.to_jsonable()
    if result.refuted:
        artifact = None
        if result.counterexample is not None:
            verdict = result.counterexample_verdict
            artifact = Artifact(
                target=target.name,
                spec=result.counterexample,
                expect_violation=(target.expect == "refuted"),
                verdict_holds=False if verdict is None else verdict.holds,
                violations=() if verdict is None else tuple(verdict.violations),
            ).to_jsonable()
        return Certificate(
            kind="counterexample",
            target=target.name,
            claim=target.claim,
            at=result.at,
            engine=result.engine,
            space=space.to_jsonable(),
            cardinality=cardinality,
            frontier=frontier,
            artifact=artifact,
            counterexample_clocks={
                str(pid): clock
                for pid, clock in sorted(result.counterexample_clocks.items())
            },
        )
    return Certificate(
        kind="proof",
        target=target.name,
        claim=target.claim,
        at=result.at,
        engine=result.engine,
        space=space.to_jsonable(),
        cardinality=cardinality,
        frontier=frontier,
    )


def render_certificate(certificate: Certificate) -> str:
    """The canonical byte representation (what :func:`save_certificate` writes)."""
    return json.dumps(certificate.to_jsonable(), sort_keys=True, indent=2) + "\n"


def save_certificate(path: Union[str, Path], certificate: Certificate) -> Path:
    path = Path(path)
    if path.is_dir() or path.suffix != ".json":
        path = path / certificate.filename()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_certificate(certificate), encoding="utf-8")
    return path


def load_certificate(path: Union[str, Path]) -> Certificate:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return Certificate.from_jsonable(data)
