"""Shared utilities: seeded randomness, validation, and text formatting.

These helpers are deliberately dependency-free so every other subpackage
can import them without cycles.
"""

from repro.util.rng import derive_seed, make_rng
from repro.util.validation import (
    require,
    require_non_negative,
    require_positive,
    require_process_count,
)

__all__ = [
    "derive_seed",
    "make_rng",
    "require",
    "require_non_negative",
    "require_positive",
    "require_process_count",
]
