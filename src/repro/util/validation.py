"""Small argument-validation helpers.

The simulators are configured with many integer parameters (process
counts, fault budgets, round limits).  Misconfigurations should fail
loudly at construction time rather than corrupt an experiment halfway
through, so public constructors validate with these helpers.
"""

from __future__ import annotations

__all__ = [
    "require",
    "require_non_negative",
    "require_positive",
    "require_process_count",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValueError(message)


def require_positive(value: int, name: str) -> int:
    """Validate that ``value`` is a positive int and return it."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value


def require_non_negative(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative int and return it."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def require_process_count(n: int) -> int:
    """Validate a system size: at least two communicating processes."""
    require_positive(n, "n")
    require(n >= 2, f"a distributed system needs at least 2 processes, got {n}")
    return n
