"""Deterministic, hierarchical random-number generation.

Every randomized component in the library (adversaries, corruption
injectors, workload generators, the asynchronous scheduler) takes an
explicit integer seed.  Components that need several independent streams
derive sub-seeds with :func:`derive_seed`, which hashes the parent seed
together with a string label.  This keeps experiment runs reproducible:
the same top-level seed always yields the same execution, regardless of
the order in which sub-components draw.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "make_rng", "sweep_seed"]

_SEED_BYTES = 8


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a distinguishing label.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 rather than ``hash()``, which is salted per-process).

    >>> derive_seed(42, "adversary") == derive_seed(42, "adversary")
    True
    >>> derive_seed(42, "adversary") != derive_seed(42, "corruption")
    True
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


def make_rng(seed: int, label: str = "") -> random.Random:
    """Return a private :class:`random.Random` for ``seed`` (and label).

    A fresh generator is returned every call; callers own its state.
    """
    if label:
        seed = derive_seed(seed, label)
    return random.Random(seed)


def sweep_seed(experiment: str, point: str, seed: int) -> int:
    """The canonical ``(experiment, sweep-point, seed)`` namespacing.

    Every seed an experiment hands to an engine, adversary, or
    corruption plan is derived as ``sweep_seed(experiment, point,
    seed)``, where ``experiment`` is the registry id (e.g. ``"FIG1"``),
    ``point`` names the sweep point and the role the seed plays at it
    (e.g. ``"n=6,f=2:corruption"``), and ``seed`` is the top-level
    repetition seed.  Namespacing guarantees that (a) distinct
    experiments sharing a repetition seed draw independent randomness,
    (b) distinct sweep points within one experiment do too, and (c) the
    draw at one point never shifts when another point is added or
    removed — which also makes parallel sweep execution
    (:func:`repro.experiments.base.run_sweep`) trivially
    order-independent.

    >>> sweep_seed("FIG1", "n=3,f=1:corruption", 0) == \\
    ...     sweep_seed("FIG1", "n=3,f=1:corruption", 0)
    True
    >>> sweep_seed("FIG1", "n=3,f=1:corruption", 0) != \\
    ...     sweep_seed("FIG2", "n=3,f=1:corruption", 0)
    True
    """
    return derive_seed(seed, f"{experiment}:{point}")
