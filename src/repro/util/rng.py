"""Deterministic, hierarchical random-number generation.

Every randomized component in the library (adversaries, corruption
injectors, workload generators, the asynchronous scheduler) takes an
explicit integer seed.  Components that need several independent streams
derive sub-seeds with :func:`derive_seed`, which hashes the parent seed
together with a string label.  This keeps experiment runs reproducible:
the same top-level seed always yields the same execution, regardless of
the order in which sub-components draw.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "make_rng"]

_SEED_BYTES = 8


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a distinguishing label.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 rather than ``hash()``, which is salted per-process).

    >>> derive_seed(42, "adversary") == derive_seed(42, "adversary")
    True
    >>> derive_seed(42, "adversary") != derive_seed(42, "corruption")
    True
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


def make_rng(seed: int, label: str = "") -> random.Random:
    """Return a private :class:`random.Random` for ``seed`` (and label).

    A fresh generator is returned every call; callers own its state.
    """
    if label:
        seed = derive_seed(seed, label)
    return random.Random(seed)
