"""Plain-text table rendering for benchmark and analysis reports.

The benchmark harness prints the same rows the paper's claims imply
(see EXPERIMENTS.md).  We render them as aligned monospace tables so the
output is directly readable in a terminal and diffable across runs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def format_series(name: str, pairs: Iterable[tuple[object, object]]) -> str:
    """Render an ``x -> y`` series on one line, e.g. for sweep results."""
    body = ", ".join(f"{_cell(x)}={_cell(y)}" for x, y in pairs)
    return f"{name}: {body}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
