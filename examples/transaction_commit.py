#!/usr/bin/env python3
"""Self-stabilizing atomic commitment from interactive consistency.

A realistic workload for the compiled vector-consensus service: a
cluster of resource managers repeatedly runs a commit protocol for a
stream of transactions.  Each round-trip of the compiled
InteractiveConsistency protocol agrees on the full *vote vector*; the
commit rule is then a pure local function of the agreed vector:

    COMMIT  iff every slot is an explicit YES
    ABORT   otherwise (a NO vote, or a crashed/absent participant)

Because all correct managers decide the *same* vector, they reach the
same commit/abort verdict — non-blocking atomic commitment over crash
faults.  The compiled protocol keeps doing this forever and, thanks to
Figure 3, keeps doing it correctly even after a systemic failure
scrambles every manager's memory mid-run.

Run:  python examples/transaction_commit.py
"""

from repro import FaultMode, RandomAdversary, RandomCorruption, run_sync
from repro.core.compiler import compile_protocol
from repro.protocols.interactive import ABSENT, InteractiveConsistency
from repro.protocols.repeated import iteration_decisions

N, F, SEED = 5, 1, 11
CORRUPTION_ROUND = 13
ROUNDS = 40

#: Vote of each resource manager for the (recurring) transaction.
VOTES = ["yes", "yes", "yes", "yes", "yes"]


def verdict(vector) -> str:
    """The atomic-commitment rule over an agreed vote vector."""
    if all(vote == "yes" for vote in vector):
        return "COMMIT"
    missing = [slot for slot, vote in enumerate(vector) if vote == ABSENT]
    reason = f"missing votes from {missing}" if missing else "explicit NO"
    return f"ABORT ({reason})"


def main() -> None:
    ic = InteractiveConsistency(f=F, proposals=VOTES)
    plus = compile_protocol(ic)

    result = run_sync(
        plus,
        n=N,
        rounds=ROUNDS,
        adversary=RandomAdversary(n=N, f=F, mode=FaultMode.CRASH, rate=0.08, seed=SEED),
        mid_run_corruptions={CORRUPTION_ROUND: RandomCorruption(seed=SEED)},
    )

    print(f"commit service: n={N} resource managers, f={F}")
    print(f"memory scrambled at round {CORRUPTION_ROUND}; crashed: {sorted(result.faulty)}")
    print("\ncommit rounds (one per completed iteration):")
    for iteration in iteration_decisions(result.history):
        agreed = "agreed" if iteration.agreed else "DISAGREED"
        (vector,) = set(iteration.decisions.values()) if iteration.agreed else (None,)
        outcome = verdict(vector) if vector is not None else "UNDEFINED"
        print(
            f"  clock {iteration.completed_at_clock:>3}: "
            f"votes={list(vector) if vector else '?'} -> {outcome} ({agreed})"
        )

    post = [
        iteration
        for iteration in iteration_decisions(result.history)
        if iteration.observed_round > CORRUPTION_ROUND + 2 * ic.final_round
    ]
    all_agree = all(iteration.agreed for iteration in post)
    print(
        f"\nall post-stabilization commit rounds agreed: {all_agree} "
        f"({len(post)} rounds judged)"
    )


if __name__ == "__main__":
    main()
