#!/usr/bin/env python3
"""Quickstart: round agreement surviving both failure types.

Runs Figure 1's round agreement protocol on a 6-process synchronous
system whose memory has just been scrambled by a systemic failure,
while 2 processes keep committing general-omission failures — and
checks the paper's headline property: within 1 round of the coterie
stabilizing, all correct processes agree on a common round number and
advance it in lockstep (Theorem 3).

Run:  python examples/quickstart.py
"""

from repro import (
    ClockAgreementProblem,
    FaultMode,
    RandomAdversary,
    RandomCorruption,
    RoundAgreementProtocol,
    ftss_check,
    run_sync,
    stable_windows,
)
from repro.analysis import empirical_stabilization

N, F, ROUNDS, SEED = 6, 2, 30, 7


def main() -> None:
    adversary = RandomAdversary(
        n=N, f=F, mode=FaultMode.GENERAL_OMISSION, rate=0.4, seed=SEED
    )
    result = run_sync(
        RoundAgreementProtocol(),
        n=N,
        rounds=ROUNDS,
        adversary=adversary,
        corruption=RandomCorruption(seed=SEED),  # the systemic failure
    )

    print(f"system: n={N}, f={F}, {ROUNDS} rounds, general omission + corruption")
    print(f"faulty processes: {sorted(result.faulty)}")
    print(f"initial (corrupted) clocks: {result.history.clocks(1)}")
    print(f"final clocks:               {result.final_clocks()}")

    print("\nstable-coterie windows (the ftss obligation structure):")
    for window in stable_windows(result.history):
        print(
            f"  rounds {window.first_round:>2}-{window.last_round:<2} "
            f"coterie={sorted(window.members)}"
        )

    sigma = ClockAgreementProblem()
    report = ftss_check(result.history, sigma, stabilization_time=1)
    measured = empirical_stabilization(result.history, sigma)
    print(f"\nftss-solves clock agreement @ stabilization 1: {report.holds}")
    print(f"measured stabilization: {measured} round(s) (paper claims <= 1)")
    if not report.holds:
        for violation in report.violations()[:5]:
            print("  ", violation)

    from repro.analysis import format_history

    print("\ntrace (first/last rounds):")
    print(format_history(result.history, max_rounds=8))


if __name__ == "__main__":
    main()
