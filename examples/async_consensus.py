#!/usr/bin/env python3
"""Asynchronous self-stabilizing consensus (paper, Section 3).

Composes the whole asynchronous stack:

- a ◇W oracle that flickers before GST and gives only *weak*
  completeness afterwards;
- the Figure 4 ◇W→◇S transformation, embedded in every process;
- the self-stabilizing Chandra-Toueg consensus (periodic
  retransmission + round-agreement superimposition), solving Repeated
  Consensus from a *scrambled* initial state while one process crashes
  mid-run.

The same corrupted start is also fed to plain Chandra-Toueg, which —
per the paper's motivation — waits forever for messages its corrupted
state claims were already sent.

Run:  python examples/async_consensus.py
"""

from repro import (
    AsyncScheduler,
    CTConsensus,
    RandomCorruption,
    WeakDetectorOracle,
    consensus_log_agreement,
)

N, SEED = 5, 4
GST = 15.0
CRASHES = {4: 60.0}
MAX_TIME = 300.0


def run(mode: str, corrupt: bool):
    oracle = WeakDetectorOracle(N, CRASHES, gst=GST, seed=SEED)
    protocol = CTConsensus(N, mode=mode)
    scheduler = AsyncScheduler(
        protocol,
        N,
        seed=SEED,
        gst=GST,
        crash_times=CRASHES,
        oracle=oracle,
        corruption=RandomCorruption(seed=SEED + 9) if corrupt else None,
        sample_interval=5.0,
    )
    return consensus_log_agreement(scheduler.run(max_time=MAX_TIME))


def describe(label: str, verdict) -> None:
    print(f"  {label}:")
    print(f"    repeated-consensus spec holds: {verdict.holds}")
    print(f"    stable from instance:          {verdict.stable_from}")
    print(f"    instances verified:            {verdict.instances_checked}")
    for detail in verdict.details[:3]:
        print(f"    note: {detail}")


def main() -> None:
    print(f"n={N}, GST={GST}, crash of process 4 at t=60, virtual time {MAX_TIME}")

    print("\nclean start:")
    describe("plain Chandra-Toueg", run("plain", corrupt=False))
    describe("self-stabilizing CT", run("ss", corrupt=False))

    print("\ncorrupted start (systemic failure):")
    describe("plain Chandra-Toueg", run("plain", corrupt=True))
    describe("self-stabilizing CT", run("ss", corrupt=True))


if __name__ == "__main__":
    main()
