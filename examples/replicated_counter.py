#!/usr/bin/env python3
"""A replicated counter that survives memory corruption.

The full stack, assembled the way a downstream user would: clients at
five replicas submit increment/decrement operations; the replicated
state machine (total-order replication over self-stabilizing
Chandra-Toueg consensus, driven by the implementable heartbeat
detector — no oracle) orders them; each replica folds the ordered log
into a counter value.  Mid-run, a systemic failure scrambles every
replica's memory; one replica also crashes.  After stabilization all
surviving replicas converge on the same counter trajectory and no
acknowledged operation is lost.

Run:  python examples/replicated_counter.py
"""

from repro.apps.rsm import (
    ClientWorkload,
    ReplicatedStateMachine,
    applied_commands,
    rsm_verdict,
)
from repro.asyncnet.scheduler import AsyncScheduler
from repro.sync.corruption import RandomCorruption

N, SEED = 5, 21
CRASHES = {4: 70.0}
MAX_TIME = 400.0

#: Client operations: (+k) increments, (-k) decrements.
OPS = {
    0: [(5.0, +1), (30.0, +10), (80.0, -3)],
    1: [(10.0, +2), (45.0, -1)],
    2: [(15.0, +5), (60.0, +7), (95.0, -2)],
    3: [(20.0, -4), (75.0, +6)],
    4: [(25.0, +8), (90.0, +100)],  # the second op dies with replica 4
}


def main() -> None:
    workload = ClientWorkload(OPS)
    rsm = ReplicatedStateMachine(N, workload, mode="ss", detector="heartbeat")
    scheduler = AsyncScheduler(
        rsm,
        N,
        seed=SEED,
        gst=15.0,
        crash_times=CRASHES,
        corruption=RandomCorruption(seed=SEED),  # scrambled from the start
        sample_interval=5.0,
    )
    trace = scheduler.run(max_time=MAX_TIME)

    print(f"replicated counter: n={N}, heartbeat detector, corrupted start")
    print(f"crashed replicas: {sorted(trace.crashed)}")

    verdict = rsm_verdict(trace, workload, liveness_cutoff=100.0)
    print(f"\nservice spec holds: {verdict.holds}")
    print(f"applied operations: {verdict.applied_count}")
    for detail in verdict.details:
        print(f"  note: {detail}")

    print("\ncounter trajectory at replica 0 (settled log):")
    state = trace.final_states[0]
    horizon = min(
        s["instance"] for p, s in trace.final_states.items() if s and p in trace.correct
    ) - 3
    value = 0
    for owner, seq, delta in applied_commands(state["log"], horizon):
        value += delta
        print(f"  replica {owner} op#{seq}: {delta:+d}  ->  counter = {value}")

    finals = set()
    for pid in trace.correct:
        replica_state = trace.final_states[pid]
        total = sum(
            delta for _o, _s, delta in applied_commands(replica_state["log"], horizon)
        )
        finals.add(total)
    print(f"\nfinal counter value at every correct replica: {sorted(finals)}")


if __name__ == "__main__":
    main()
