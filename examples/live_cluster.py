#!/usr/bin/env python3
"""A live 4-process cluster over loopback TCP, faults on the wire.

Runs Figure 1's round agreement protocol as four processes exchanging
length-prefixed JSON frames through real sockets — not a simulation
loop.  The seeded fault plan crashes one process mid-broadcast and
fires a two-round omission burst at another, while wire-level delay and
duplication jitter every surviving frame.  The history recorded from
the live event stream is then checked exactly like a simulated one:
the script prints the live cluster's empirical stabilization point and
the ftss verdict, and cross-checks both against the synchronous engine
running the *same* plan (simulator↔live conformance).

Run:  python examples/live_cluster.py
"""

from repro import (
    ClockAgreementProblem,
    RoundAgreementProtocol,
    ftss_check,
    run_sync,
)
from repro.analysis import empirical_stabilization
from repro.kernel.faults import FaultPlan, WireFaults
from repro.net import histories_equal, run_live_sync
from repro.sync.adversary import RoundFaultPlan, ScriptedAdversary

N, ROUNDS = 4, 16
SIGMA = ClockAgreementProblem()


def fault_plan() -> FaultPlan:
    """One crash mid-broadcast + an omission burst + a noisy wire."""
    script = {
        3: RoundFaultPlan(crashes={3: frozenset({0})}),  # only 0 hears the last word
        5: RoundFaultPlan(send_omissions={1: frozenset({0, 2})}),
        6: RoundFaultPlan(send_omissions={1: frozenset({2})}),
    }
    return FaultPlan(
        omissions=ScriptedAdversary(f=2, script=script),
        wire=WireFaults(delay=(0.0, 0.003), duplication=0.25, seed=11),
    )


def main() -> None:
    print(f"live cluster: n={N}, loopback TCP, {ROUNDS} barrier-paced rounds")
    print("plan: crash pid 3 @ round 3 (partial broadcast), omission burst")
    print("      by pid 1 @ rounds 5-6, wire delay ≤3ms + 25% duplication\n")

    live = run_live_sync(
        RoundAgreementProtocol(),
        N,
        ROUNDS,
        fault_plan=fault_plan(),
        transport="tcp",
        deadline=60,
    )
    print(f"faulty processes (live): {sorted(live.faulty)}")
    print(f"final clocks (live):     {live.final_clocks()}")

    point = empirical_stabilization(live.history, SIGMA)
    verdict = ftss_check(live.history, SIGMA, stabilization_time=1)
    print(f"\nlive stabilization point: {point} round(s) after each coterie change")
    print(f"ftss-solves clock agreement @ stabilization 1 (live): {verdict.holds}")

    sim = run_sync(RoundAgreementProtocol(), n=N, rounds=ROUNDS, fault_plan=fault_plan())
    print(
        "\nconformance: live TCP history == simulated history: "
        f"{histories_equal(live.history, sim.history)}"
    )


if __name__ == "__main__":
    main()
