#!/usr/bin/env python3
"""Sweeps as a service: one server, streaming clients, a shared cache.

Boots a real :mod:`repro.serve` server on an ephemeral loopback port,
then plays client against it three times:

1. a **cold** Figure-4 sweep — every (point, seed) task is sharded
   across the worker fleet and executed, outcomes streaming back in
   input order as ND-JSON;
2. the **same sweep again** — now answered entirely from the server's
   content-addressed store: zero simulations, pure cache hits;
3. a direct local :func:`repro.experiments.base.run_sweep` of the same
   tasks — byte-compared against what came over HTTP, the determinism
   contract that makes the shared cache sound in the first place;
4. a burst of **concurrent clients** — four threads re-requesting the
   sweep (pure hits) while a fifth runs an EXPLORE job through
   ``POST /v1/explore``.

Finally it prints the server's ``/v1/stats`` counters: the narration of
everything the calls did, including the fleet-wide cache hit ratio.

Run:  python examples/serve_client.py
"""

import pickle
import tempfile
import threading

import repro.cache
from repro.experiments import fig4
from repro.experiments.base import run_sweep, shutdown_pool
from repro.serve import ServeClient, ServerThread

POINTS = ((4, False), (4, True))
SEEDS = (0, 1)


def main() -> None:
    tasks = [(n, corrupt, seed) for n, corrupt in POINTS for seed in SEEDS]
    print(f"FIG4 sweep surface: {len(POINTS)} points x {len(SEEDS)} seeds "
          f"= {len(tasks)} tasks\n")

    # local reference first: the fork pool must be gone before the
    # serving event loop starts
    local = run_sweep(fig4._measure, tasks, jobs=1)
    shutdown_pool()

    with tempfile.TemporaryDirectory(prefix="repro-serve-example-") as tmp:
        repro.cache.configure(root=tmp, enabled=True)
        try:
            with ServerThread(fleet_kind="inproc", workers=2) as server:
                client = ServeClient(server.url)
                listing = [e["experiment"] for e in client.experiments()["experiments"]]
                print(f"server up at {server.url}, serving: {', '.join(listing)}\n")

                cold = client.sweep("FIG4", points=POINTS, seeds=list(SEEDS))
                print(f"cold sweep:  {cold.end['executed']} executed, "
                      f"{cold.end['cache_hits']} cached "
                      f"({cold.end['elapsed_s']:.3f}s)")

                warm = client.sweep("FIG4", points=POINTS, seeds=list(SEEDS))
                print(f"warm sweep:  {warm.end['executed']} executed, "
                      f"{warm.end['cache_hits']} cached "
                      f"({warm.end['elapsed_s']:.3f}s)")
                print(f"warm pass executed zero simulations: "
                      f"{warm.end['executed'] == 0}")

                served = pickle.dumps(warm.outcomes, 4)
                reference = pickle.dumps(list(local), 4)
                print(f"served outcomes byte-identical to local run_sweep: "
                      f"{served == reference}")

                summaries = {}

                def hammer(name, request):
                    summaries[name] = request(ServeClient(server.url))

                burst = [
                    threading.Thread(
                        target=hammer,
                        args=(f"sweep-{i}",
                              lambda c: c.sweep("FIG4", points=POINTS,
                                                seeds=list(SEEDS))),
                    )
                    for i in range(4)
                ] + [
                    threading.Thread(
                        target=hammer,
                        args=("explore",
                              lambda c: c.explore("fig1", budget=20, seed=0)),
                    )
                ]
                for thread in burst:
                    thread.start()
                for thread in burst:
                    thread.join()
                executed = sum(s.end["executed"] for s in summaries.values())
                explored = summaries["explore"].outcomes[0]
                print(f"\nconcurrent burst: {len(burst)} clients, "
                      f"{executed} executed "
                      f"(only the first EXPLORE run is a miss)")
                print(f"explore fig1: examined {explored['examined']} plans, "
                      f"{explored['flagged']} flagged")

                stats = client.stats()
                print(f"\nserver stats: {stats['requests']['total']} requests, "
                      f"{stats['tasks']['total']} tasks "
                      f"(hit ratio {stats['tasks']['hit_ratio']}), "
                      f"p50 latency {stats['latency_ms']['p50']}ms")
        finally:
            repro.cache.configure()


if __name__ == "__main__":
    main()
