#!/usr/bin/env python3
"""A self-stabilizing replicated log via the compiler (Figures 2-3).

The motivating workload for the paper's compiler: a replicated service
that must agree, again and again, on the next entry — i.e. Repeated
Consensus built from a terminating Single Consensus (the paper's own
example).  We take the crash-tolerant FloodMin protocol, compile it
with Figure 3's superimposition, and subject the run to the works:

- a systemic failure scrambles every replica's memory at round 15
  (mid-execution — the analysis treats the suffix as a fresh start);
- crash failures keep occurring throughout.

The compiled protocol re-stabilizes within about one iteration and
every subsequent log entry is agreed and valid.

Run:  python examples/replicated_log.py
"""

from repro import (
    FaultMode,
    FloodMinConsensus,
    RandomAdversary,
    RandomCorruption,
    RepeatedConsensusProblem,
    compile_protocol,
    ftss_check,
    iteration_decisions,
    run_sync,
)

N, F, SEED = 5, 2, 3
CORRUPTION_ROUND = 15
ROUNDS = 45


def main() -> None:
    # Each replica proposes a command id; FloodMin picks the minimum.
    pi = FloodMinConsensus(f=F, proposals=[30, 10, 40, 10, 50])
    plus = compile_protocol(pi)
    proposals = frozenset(pi.proposal_for(p) for p in range(N))

    result = run_sync(
        plus,
        n=N,
        rounds=ROUNDS,
        adversary=RandomAdversary(n=N, f=F, mode=FaultMode.CRASH, rate=0.1, seed=SEED),
        mid_run_corruptions={CORRUPTION_ROUND: RandomCorruption(seed=SEED)},
    )

    print(f"replicated log: n={N}, f={F}, corruption strikes at round {CORRUPTION_ROUND}")
    print(f"crashed replicas: {sorted(result.faulty)}")

    print("\nlog entries (iteration decisions) observed over the whole run:")
    for iteration in iteration_decisions(result.history):
        values = sorted(set(iteration.decisions.values()))
        status = "agreed" if iteration.agreed else "DISAGREED"
        valid = "valid" if iteration.valid(proposals) else "INVALID"
        print(
            f"  clock {iteration.completed_at_clock:>4}: entries {values} "
            f"({status}, {valid}, first seen round {iteration.observed_round})"
        )

    # Piecewise verdict on the post-corruption suffix, per Theorem 4.
    sigma = RepeatedConsensusProblem(pi.final_round, valid_proposals=proposals)
    suffix = result.history.suffix(CORRUPTION_ROUND - 1)
    report = ftss_check(suffix, sigma, stabilization_time=pi.final_round)
    print(
        f"\npost-corruption suffix ftss-solves Σ⁺ @ stabilization "
        f"{pi.final_round}: {report.holds}"
    )


if __name__ == "__main__":
    main()
