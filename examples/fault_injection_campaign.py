#!/usr/bin/env python3
"""A fault-injection campaign across the synchronous protocol zoo.

Sweeps every compiled protocol against every fault mode it tolerates,
with randomized systemic failures, and prints a verdict matrix — the
kind of soak test a downstream adopter would run before trusting the
compiler with their own Π.

Run:  python examples/fault_injection_campaign.py [seeds]
"""

import sys

from repro import (
    FaultMode,
    FloodBroadcast,
    FloodMinConsensus,
    PhaseQueenConsensus,
    RandomAdversary,
    RandomCorruption,
    RepeatedConsensusProblem,
    compile_protocol,
    ftss_check,
    run_sync,
)
from repro.analysis import ExperimentReport


def campaign_cases():
    """(canonical protocol, n, tolerated fault modes)."""
    return [
        (
            FloodMinConsensus(f=2, proposals=[3, 1, 4, 1, 5]),
            5,
            [FaultMode.CRASH],
        ),
        (
            PhaseQueenConsensus(f=1, n=6, proposals=[0, 1, 1, 0, 1, 0]),
            6,
            [FaultMode.CRASH, FaultMode.SEND_OMISSION, FaultMode.GENERAL_OMISSION],
        ),
        (
            FloodBroadcast(f=2, sender=0, value=1, domain=(0, 1)),
            5,
            [FaultMode.CRASH],
        ),
    ]


def run_case(pi, n, mode, seed):
    plus = compile_protocol(pi)
    adversary = RandomAdversary(n=n, f=pi.f, mode=mode, rate=0.2, seed=seed)
    result = run_sync(
        plus,
        n=n,
        rounds=12 * pi.final_round,
        adversary=adversary,
        corruption=RandomCorruption(seed=seed + 17),
    )
    if hasattr(pi, "proposal_for"):
        proposals = frozenset(pi.proposal_for(p) for p in range(n))
    else:
        proposals = None  # broadcast: any journalled outcome group must agree
    sigma = RepeatedConsensusProblem(pi.final_round, valid_proposals=proposals)
    return ftss_check(result.history, sigma, pi.final_round).holds


def main() -> None:
    seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    report = ExperimentReport(
        experiment_id="CAMPAIGN",
        title=f"Compiled-protocol soak test, {seeds} seeds per cell",
        claim="every compiled protocol ftss-solves its Σ⁺ under every "
        "fault mode its Π tolerates (Thm 4)",
        headers=["protocol", "fault mode", "ftss holds"],
    )
    all_ok = True
    for pi, n, modes in campaign_cases():
        for mode in modes:
            ok = sum(run_case(pi, n, mode, seed) for seed in range(seeds))
            report.add_row(pi.name, mode.value, f"{ok}/{seeds}")
            all_ok &= ok == seeds
    report.emit()
    print(f"\ncampaign verdict: {'ALL GREEN' if all_ok else 'FAILURES PRESENT'}")


if __name__ == "__main__":
    main()
