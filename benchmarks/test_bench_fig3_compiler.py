"""FIG3 bench: wraps :mod:`repro.experiments.fig3` with wall-clock timing."""

from repro.core.compiler import compile_protocol
from repro.experiments import fig3
from repro.sync.corruption import RandomCorruption
from repro.sync.engine import run_sync


def test_fig3_compiled(benchmark, emit_report):
    pi, n, _mode = fig3.cases()[0]
    plus = compile_protocol(pi)
    benchmark(
        lambda: run_sync(
            plus,
            n=n,
            rounds=12 * pi.final_round,
            corruption=RandomCorruption(seed=500),
        )
    )
    result = fig3.run()
    emit_report(result.report)
    assert result.passed, result.failures
