"""THM3 bench: wraps :mod:`repro.experiments.thm3` with wall-clock timing."""

from repro.experiments import thm3
from repro.sync.adversary import FaultMode


def test_thm3_stabilization_distribution(benchmark, emit_report):
    benchmark(thm3.one_run, 1 << 20, FaultMode.GENERAL_OMISSION, 0)
    result = thm3.run()
    emit_report(result.report)
    assert result.passed, result.failures
