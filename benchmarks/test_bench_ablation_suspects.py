"""ABL-SUSPECT bench: wraps :mod:`repro.experiments.abl_suspect`."""

from repro.experiments import abl_suspect


def test_ablation_suspect_sets(benchmark, emit_report):
    benchmark(abl_suspect.one_run, True, 0)
    result = abl_suspect.run()
    emit_report(result.report)
    assert result.passed, result.failures
