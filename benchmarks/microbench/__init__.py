"""Microbenchmarks for the kernel hot path.

Unlike the ``benchmarks/test_bench_*`` experiment regenerators (which
reproduce the paper's tables), these scripts time the *primitives* every
experiment bottoms out in — snapshotting, the send/deliver round loop,
and sweep dispatch — and emit ``benchmarks/results/BENCH_MICRO.json`` /
``BENCH_E2E.json`` in the same report format, so
``benchmarks/compare.py`` can diff fresh runs against the committed
baselines.  See ``docs/perf.md``.

Run them with the src tree on the path::

    PYTHONPATH=src python benchmarks/microbench/bench_kernel.py
    PYTHONPATH=src python benchmarks/microbench/bench_e2e.py
"""
