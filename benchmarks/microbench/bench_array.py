"""Array-backend microbenchmarks: the ≥ 50x throughput claim, gated.

Measures end-to-end engine throughput (``processes_per_sec`` = n ×
rounds × lanes / wall seconds) for three engines on the same unison
workload (min-rule unison on a square grid, randomly corrupted clocks,
no history):

- ``reference`` — the per-process :func:`repro.sync.engine.run_sync`
  loop, one lane at a time;
- ``array-numpy`` — :func:`repro.array.engine.run_array` on the NumPy
  data plane, all lanes in one batched pass (skipped, with a note row,
  when NumPy is absent — the committed baseline always has it);
- ``array-python`` — the same batched driver on the pure-Python
  fallback data plane, at a smaller n (the fallback is a correctness
  path, not a performance claim; its row documents that batching alone
  does not regress below the reference engine).

``speedup_vs_ref`` rows are the machine-independent gate:
``benchmarks/compare.py`` (25% band) compares a fresh emission against
the committed ``benchmarks/results/BENCH_ARRAY.json``, and the
``array-smoke`` CI job fails if the NumPy speedup decays below 75% of
the committed value — the paper-scale claim (≥ 50x at n = 10^4) is
asserted directly by the ARRAY-SCALE experiment.

Usage::

    PYTHONPATH=src python benchmarks/microbench/bench_array.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse

if __package__ in (None, ""):
    from _harness import best_per_call, emit, ratio
else:
    from ._harness import best_per_call, emit, ratio

from repro.analysis.report import ExperimentReport
from repro.array import has_numpy, run_array
from repro.experiments.array_scale import _corruption, make_topology
from repro.kernel.faults import FaultPlan
from repro.protocols.unison import MinUnison
from repro.sync.engine import run_sync

#: NumPy rows run at paper scale; the pure-Python fallback rows at a
#: size where a batch still finishes in benchmark time.
N_NUMPY = 10_000
N_PYTHON = 1_024
LANES = 4
ROUNDS = 60
#: The reference engine gets a shorter run (throughput is per
#: process-round, so fewer rounds measure the same rate without
#: spending seconds per call at n = 10^4).
REFERENCE_ROUNDS = 10


def _plans(n: int, lanes: int):
    return [
        FaultPlan(initial_corruption=_corruption("grid", n, seed))
        for seed in range(lanes)
    ]


def _array_call(n: int, rounds: int, backend: str):
    topology = make_topology("grid", n)
    plans = _plans(n, LANES)

    def call():
        run_array(
            MinUnison(),
            n,
            rounds,
            fault_plans=plans,
            topology=topology,
            backend=backend,
        )

    return call


def _reference_call(n: int, rounds: int):
    topology = make_topology("grid", n)

    def call():
        run_sync(
            MinUnison(),
            n=n,
            rounds=rounds,
            corruption=_corruption("grid", n, 0),
            topology=topology,
            record_history=False,
        )

    return call


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="bench_array")
    parser.add_argument("--quick", action="store_true", help="fewer repeats")
    parser.add_argument("--out", metavar="PATH", help="write JSON here")
    args = parser.parse_args(argv)
    repeat = 2 if args.quick else 3

    report = ExperimentReport(
        experiment_id="ARRAY",
        title="Batched array backend vs the reference engine",
        claim=(
            "one vectorized pass over all lanes sustains orders of "
            "magnitude more process-rounds per second than the "
            "per-process reference loop"
        ),
        headers=["benchmark", "n", "lanes", "processes_per_sec", "speedup_vs_ref"],
    )

    def pps(seconds: float, n: int, rounds: int, lanes: int) -> float:
        return round(n * rounds * lanes / seconds, 1)

    for n, backend, available in (
        (N_NUMPY, "numpy", has_numpy()),
        (N_PYTHON, "python", True),
    ):
        ref_s = best_per_call(
            _reference_call(n, REFERENCE_ROUNDS), number=1, repeat=repeat
        )
        ref_pps = pps(ref_s, n, REFERENCE_ROUNDS, 1)
        report.add_row(f"reference/grid-{n}", n, 1, ref_pps, None)
        if not available:
            report.add_row(f"array-{backend}/grid-{n}", n, LANES, None, None)
            continue
        array_s = best_per_call(
            _array_call(n, ROUNDS, backend), number=1, repeat=repeat
        )
        array_pps = pps(array_s, n, ROUNDS, LANES)
        report.add_row(
            f"array-{backend}/grid-{n}",
            n,
            LANES,
            array_pps,
            ratio(1.0 / ref_pps, 1.0 / array_pps),
        )

    emit(report, args.out)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
