"""Array-backend microbenchmarks: the ≥ 50x throughput claim, gated.

Measures end-to-end engine throughput (``processes_per_sec`` = n ×
rounds × lanes / wall seconds) and peak resident memory (``peak_mb``,
``ru_maxrss`` of a forked child that runs the workload once) for the
engines on the same unison workload (min-rule unison, randomly
corrupted clocks, no history):

- ``reference`` — the per-process :func:`repro.sync.engine.run_sync`
  loop, one lane at a time;
- ``array-numpy`` — :func:`repro.array.engine.run_array` on the NumPy
  data plane, all lanes in one batched pass (skipped, with a note row,
  when NumPy is absent — the committed baseline always has it);
- ``array-python`` — the same batched driver on the pure-Python
  fallback data plane, at a smaller n (the fallback is a correctness
  path, not a performance claim; its row documents that batching alone
  does not regress below the reference engine);
- ``array-numpy-chunked/ring-1000000`` — the headline scale row: one
  million processes per lane through the chunked lane executor, which
  is the memory ceiling this file documents (``peak_mb``).

``speedup_vs_ref`` rows are the machine-independent gate:
``benchmarks/compare.py`` (25% band) compares a fresh emission against
the committed ``benchmarks/results/BENCH_ARRAY.json``, and the
``array-smoke`` CI job fails if the NumPy speedup decays below 75% of
the committed value — the paper-scale claim (≥ 50x at n = 10^4) is
asserted directly by the ARRAY-SCALE experiment.

``--chunked`` emits the separate ARRAY-CHUNK report instead: a fast
chunked run at n = 10^5 on *both* data planes, gated in CI on
``processes_per_sec`` and ``peak_mb`` against
``benchmarks/results/BENCH_ARRAY_CHUNK.json`` (wider band — these two
fields are machine-dependent, the gate catches collapses, not noise).

Usage::

    PYTHONPATH=src python benchmarks/microbench/bench_array.py \
        [--quick] [--chunked] [--out PATH]
"""

from __future__ import annotations

import argparse
import multiprocessing
import resource
import time

if __package__ in (None, ""):
    from _harness import best_per_call, emit, ratio
else:
    from ._harness import best_per_call, emit, ratio

from repro.analysis.report import ExperimentReport
from repro.array import has_numpy, run_array
from repro.experiments.array_scale import _corruption, make_topology
from repro.kernel.faults import FaultPlan
from repro.protocols.unison import MinUnison
from repro.sync.engine import run_sync

#: NumPy rows run at paper scale; the pure-Python fallback rows at a
#: size where a batch still finishes in benchmark time.
N_NUMPY = 10_000
N_PYTHON = 1_024
LANES = 4
ROUNDS = 60
#: The reference engine gets a shorter run (throughput is per
#: process-round, so fewer rounds measure the same rate without
#: spending seconds per call at n = 10^4).
REFERENCE_ROUNDS = 10

#: The chunked-scale rows: small chunk to genuinely exercise the chunk
#: loop (ring n=10^5 has ~3n edges, so ~40 chunks per lane per round).
N_CHUNK = 100_000
CHUNK_CELLS = 1 << 14
CHUNK_LANES = 2
CHUNK_ROUNDS = {"numpy": 12, "python": 3}

#: The headline memory-ceiling row: a million processes per lane.
N_CEILING = 1_000_000
CEILING_LANES = 2
CEILING_ROUNDS = 6


def _plans(family: str, n: int, lanes: int):
    return [
        FaultPlan(initial_corruption=_corruption(family, n, seed))
        for seed in range(lanes)
    ]


def _array_call(family: str, n: int, rounds: int, lanes: int, backend: str, chunk=None):
    topology = make_topology(family, n)
    plans = _plans(family, n, lanes)

    def call():
        run_array(
            MinUnison(),
            n,
            rounds,
            fault_plans=plans,
            topology=topology,
            backend=backend,
            chunk=chunk,
        )

    return call


def _reference_call(family: str, n: int, rounds: int):
    topology = make_topology(family, n)

    def call():
        run_sync(
            MinUnison(),
            n=n,
            rounds=rounds,
            corruption=_corruption(family, n, 0),
            topology=topology,
            record_history=False,
        )

    return call


def _probe_child(call, queue):
    started = time.perf_counter()
    call()
    seconds = time.perf_counter() - started
    queue.put((seconds, resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0))


def _fork_probe(call):
    """Run ``call`` once in a forked child: (wall seconds, peak RSS MB).

    A fresh child per probe keeps the parent's own allocations (and the
    other rows' leftovers) out of ``ru_maxrss``; the fork baseline is
    the parent's *current* RSS, which the interpreter keeps small by
    probing before any in-parent timing run at the same size.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # no fork on this platform: measure in-process
        started = time.perf_counter()
        call()
        seconds = time.perf_counter() - started
        return seconds, resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    queue = ctx.SimpleQueue()
    child = ctx.Process(target=_probe_child, args=(call, queue))
    child.start()
    try:
        result = queue.get()
    finally:
        child.join()
    return result


def _pps(seconds: float, n: int, rounds: int, lanes: int) -> float:
    return round(n * rounds * lanes / seconds, 1)


def _main_report(repeat: int) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="ARRAY",
        title="Batched array backend vs the reference engine",
        claim=(
            "one vectorized pass over all lanes sustains orders of "
            "magnitude more process-rounds per second than the "
            "per-process reference loop, inside a bounded memory ceiling"
        ),
        headers=[
            "benchmark",
            "n",
            "lanes",
            "processes_per_sec",
            "speedup_vs_ref",
            "peak_mb",
        ],
    )

    for n, backend, available in (
        (N_NUMPY, "numpy", has_numpy()),
        (N_PYTHON, "python", True),
    ):
        ref_call = _reference_call("grid", n, REFERENCE_ROUNDS)
        _, ref_peak = _fork_probe(ref_call)
        ref_s = best_per_call(ref_call, number=1, repeat=repeat)
        ref_pps = _pps(ref_s, n, REFERENCE_ROUNDS, 1)
        report.add_row(f"reference/grid-{n}", n, 1, ref_pps, None, round(ref_peak, 1))
        if not available:
            report.add_row(f"array-{backend}/grid-{n}", n, LANES, None, None, None)
            continue
        array_call = _array_call("grid", n, ROUNDS, LANES, backend)
        _, array_peak = _fork_probe(array_call)
        array_s = best_per_call(array_call, number=1, repeat=repeat)
        array_pps = _pps(array_s, n, ROUNDS, LANES)
        report.add_row(
            f"array-{backend}/grid-{n}",
            n,
            LANES,
            array_pps,
            ratio(1.0 / ref_pps, 1.0 / array_pps),
            round(array_peak, 1),
        )

    # The memory-ceiling headline: n = 10^6 through the chunked lane
    # executor, measured once (fork) — no timing repeats at this size.
    if has_numpy():
        seconds, peak = _fork_probe(
            _array_call(
                "ring",
                N_CEILING,
                CEILING_ROUNDS,
                CEILING_LANES,
                "numpy",
                chunk=CHUNK_CELLS,
            )
        )
        report.add_row(
            f"array-numpy-chunked/ring-{N_CEILING}",
            N_CEILING,
            CEILING_LANES,
            _pps(seconds, N_CEILING, CEILING_ROUNDS, CEILING_LANES),
            None,
            round(peak, 1),
        )
    else:
        report.add_row(
            f"array-numpy-chunked/ring-{N_CEILING}",
            N_CEILING,
            CEILING_LANES,
            None,
            None,
            None,
        )
    return report


def _chunked_report() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="ARRAY-CHUNK",
        title="Chunked lane executor at n = 10^5, both data planes",
        claim=(
            "bounded-memory chunking keeps throughput and the memory "
            "ceiling flat at scale on both data planes"
        ),
        headers=["benchmark", "n", "lanes", "processes_per_sec", "peak_mb"],
    )
    for backend, available in (("numpy", has_numpy()), ("python", True)):
        if not available:
            report.add_row(
                f"array-{backend}-chunked/ring-{N_CHUNK}",
                N_CHUNK,
                CHUNK_LANES,
                None,
                None,
            )
            continue
        rounds = CHUNK_ROUNDS[backend]
        seconds, peak = _fork_probe(
            _array_call(
                "ring", N_CHUNK, rounds, CHUNK_LANES, backend, chunk=CHUNK_CELLS
            )
        )
        report.add_row(
            f"array-{backend}-chunked/ring-{N_CHUNK}",
            N_CHUNK,
            CHUNK_LANES,
            _pps(seconds, N_CHUNK, rounds, CHUNK_LANES),
            round(peak, 1),
        )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="bench_array")
    parser.add_argument("--quick", action="store_true", help="fewer repeats")
    parser.add_argument(
        "--chunked",
        action="store_true",
        help="emit the ARRAY-CHUNK n=10^5 report instead of the main one",
    )
    parser.add_argument("--out", metavar="PATH", help="write JSON here")
    args = parser.parse_args(argv)
    repeat = 2 if args.quick else 3

    report = _chunked_report() if args.chunked else _main_report(repeat)
    emit(report, args.out)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
