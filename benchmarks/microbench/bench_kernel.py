"""Kernel-primitive microbenchmarks: snapshot, round loop, sweep dispatch.

Times the primitives every experiment and exploration run bottoms out
in, and emits ``benchmarks/results/BENCH_MICRO.json`` for
``benchmarks/compare.py``.  Four rows carry a ``speedup_vs_ref`` ratio
against an in-file reference implementation (the seed's uncached
snapshot walk, a recorded-history round loop, a fresh-pool-per-sweep
dispatch); ratios are machine-independent, so CI regresses on them
while the absolute ``per_call_us`` columns stay informational.

Usage::

    PYTHONPATH=src python benchmarks/microbench/bench_kernel.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import copy
import dataclasses
import sys
from typing import Any, Dict, Mapping, Sequence

if __package__ in (None, ""):
    from _harness import best_per_call, emit, ratio, us
else:
    from ._harness import best_per_call, emit, ratio, us

from repro.analysis.report import ExperimentReport
from repro.experiments import base as experiments_base
from repro.histories.history import CLOCK_KEY, Message
from repro.kernel import snapshot
from repro.kernel.snapshot import copy_payload, snapshot_states
from repro.sync.adversary import FaultMode, RandomAdversary
from repro.sync.engine import run_sync
from repro.sync.protocol import SyncProtocol

# ----------------------------------------------------------------------
# Reference implementation: the seed's uncached immutability walk.
# Kept verbatim so `speedup_vs_ref` measures exactly what the interning
# layer buys over re-proving immutability from scratch on every call.

_ATOMS = (int, float, complex, bool, str, bytes, type(None))


def _ref_is_deeply_immutable(value: Any) -> bool:
    if isinstance(value, _ATOMS):
        return True
    if isinstance(value, (tuple, frozenset)):
        return all(_ref_is_deeply_immutable(item) for item in value)
    if (
        dataclasses.is_dataclass(value)
        and not isinstance(value, type)
        and value.__dataclass_params__.frozen
    ):
        return all(
            _ref_is_deeply_immutable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        )
    return False


def _ref_copy_value(value: Any) -> Any:
    if _ref_is_deeply_immutable(value):
        return value
    kind = type(value)
    if kind is dict:
        return {key: _ref_copy_value(item) for key, item in value.items()}
    if kind is list:
        return [_ref_copy_value(item) for item in value]
    if kind is set:
        return {_ref_copy_value(item) for item in value}
    if kind is tuple:
        return tuple(_ref_copy_value(item) for item in value)
    if kind is frozenset:
        return frozenset(_ref_copy_value(item) for item in value)
    return copy.deepcopy(value)


def _ref_snapshot_states(states):
    return {
        pid: None if state is None else
        {key: _ref_copy_value(item) for key, item in state.items()}
        for pid, state in states.items()
    }


# ----------------------------------------------------------------------
# Representative workload: full-information states whose views are
# nested tuples (Figure 2's canonical form sends (pid, inner state)).


def make_state_vector(n: int = 8, depth: int = 24) -> Dict[int, Dict[str, Any]]:
    """``n`` process states, each holding a ``depth``-round view tuple."""
    states = {}
    for pid in range(n):
        view = tuple(
            tuple((peer, r + peer) for peer in range(n)) for r in range(depth)
        )
        states[pid] = {
            CLOCK_KEY: depth,
            "inner": {"view": view, "round": depth, "decision": None},
            "halted": False,
            "n": n,
        }
    return states


def make_view_payload(n: int = 8, depth: int = 24) -> Any:
    return (
        0,
        tuple(tuple((peer, r + peer) for peer in range(n)) for r in range(depth)),
    )


class ViewProtocol(SyncProtocol):
    """Full-information broadcast with a bounded growing view window."""

    name = "bench-view"

    def __init__(self, window: int = 8):
        self._window = window

    def initial_state(self, pid: int, n: int) -> Dict[str, Any]:
        return {CLOCK_KEY: 1, "view": (), "n": n}

    def send(self, pid: int, state: Mapping[str, Any]) -> Any:
        return (pid, state[CLOCK_KEY], state["view"])

    def update(
        self, pid: int, state: Mapping[str, Any], delivered: Sequence[Message]
    ) -> Dict[str, Any]:
        digest = tuple((m.payload[0], m.payload[1]) for m in delivered)
        view = (state["view"] + (digest,))[-self._window:]
        return {CLOCK_KEY: state[CLOCK_KEY] + 1, "view": view, "n": state["n"]}


_ROUNDS = 60
_N = 6


def _run_recorded() -> None:
    run_sync(ViewProtocol(), n=_N, rounds=_ROUNDS)


def _run_streaming() -> None:
    run_sync(ViewProtocol(), n=_N, rounds=_ROUNDS, record_history=False)


def _run_faulty() -> None:
    adversary = RandomAdversary(
        n=_N, f=2, mode=FaultMode.GENERAL_OMISSION, rate=0.2, seed=7
    )
    run_sync(ViewProtocol(), n=_N, rounds=_ROUNDS, adversary=adversary)


# ----------------------------------------------------------------------
# Sweep dispatch: the fixed cost of fanning a sweep over workers.


def _sweep_worker(point: int) -> int:
    return point * point


_SWEEP_POINTS = list(range(24))


def _sweep_persistent() -> None:
    experiments_base.run_sweep(_sweep_worker, _SWEEP_POINTS, jobs=2)


def _sweep_fresh() -> None:
    # Pre-interning seed has no persistent pool to shut down; the
    # fallback makes the ratio an honest 1.0x there.
    getattr(experiments_base, "shutdown_pool", lambda: None)()
    experiments_base.run_sweep(_sweep_worker, _SWEEP_POINTS, jobs=2)


def _clear_snapshot_caches() -> None:
    getattr(snapshot, "clear_caches", lambda: None)()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI settings: fewer repeats"
    )
    parser.add_argument("--out", metavar="PATH", help="write the JSON here instead")
    args = parser.parse_args(argv)

    repeat = 3 if args.quick else 7
    scale = 0.2 if args.quick else 1.0

    def n_of(number: int) -> int:
        return max(1, int(number * scale))

    states = make_state_vector()
    payload = make_view_payload()

    report = ExperimentReport(
        experiment_id="MICRO",
        title="Kernel hot-path microbenchmarks",
        claim="interned snapshots, lean dispatch and the persistent sweep "
        "pool keep the per-run constant factor >= 2x below the uncached "
        "reference implementations",
        headers=["benchmark", "per_call_us", "ref_us", "speedup_vs_ref"],
    )

    def row(name, seconds, ref_seconds=None):
        if ref_seconds is None:
            report.add_row(name, us(seconds), None, None)
        else:
            report.add_row(
                name, us(seconds), us(ref_seconds), ratio(ref_seconds, seconds)
            )

    # -- snapshotting ----------------------------------------------------
    hot = best_per_call(
        lambda: snapshot_states(states), number=n_of(300), repeat=repeat
    )
    ref = best_per_call(
        lambda: _ref_snapshot_states(states), number=n_of(300), repeat=repeat
    )
    row("snapshot/hot", hot, ref)

    cold = best_per_call(
        lambda: snapshot_states(states),
        number=1,
        repeat=max(repeat, 5) * 20,
        setup=_clear_snapshot_caches,
    )
    row("snapshot/cold", cold)

    pay = best_per_call(
        lambda: copy_payload(payload), number=n_of(2000), repeat=repeat
    )
    pay_ref = best_per_call(
        lambda: _ref_copy_value(payload), number=n_of(2000), repeat=repeat
    )
    row("payload/view", pay, pay_ref)

    # -- the round loop --------------------------------------------------
    recorded = best_per_call(_run_recorded, number=n_of(10), repeat=repeat)
    row("round/recorded", recorded)
    streaming = best_per_call(_run_streaming, number=n_of(10), repeat=repeat)
    row("round/streaming", streaming, recorded)
    faulty = best_per_call(_run_faulty, number=n_of(10), repeat=repeat)
    row("round/faulty", faulty)

    # -- sweep dispatch --------------------------------------------------
    fresh = best_per_call(_sweep_fresh, number=1, repeat=max(2, repeat))
    persistent = best_per_call(
        _sweep_persistent, number=n_of(10), repeat=max(2, repeat)
    )
    row("sweep/dispatch", persistent, fresh)

    emit(report, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
