"""Cold-vs-warm timings for the content-addressed run cache.

Two scenarios, each run twice against a throwaway cache directory:

- ``FIG1-sweep`` — one full FIG1 experiment (``REGISTRY.run``), the
  canonical ``run_sweep(cache="FIG1")`` integration;
- ``EXPLORE-shrink`` — an exhaustive thm1 exploration including
  delta-debug shrinking, whose confirm oracle replays near-identical
  sub-plans through :func:`repro.cache.cached_call`.

The cold pass populates the cache (every simulation executes); the warm
pass answers from it.  Wall-clock columns (``cold_s``/``warm_s``/
``speedup``) are machine-dependent trajectory documentation; the
``*_executed_sims`` columns count simulations that actually ran (cache
misses) and are **machine-independent** — the committed baseline pins
``warm_executed_sims == 0``, and ``benchmarks/compare.py`` treats
``executed`` columns as lower-is-better.

Usage::

    PYTHONPATH=src python benchmarks/microbench/bench_cache.py [--out PATH]
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time

if __package__ in (None, ""):
    from _harness import emit
else:
    from ._harness import emit

import repro.cache
from repro.analysis.report import ExperimentReport
from repro.experiments import REGISTRY
from repro.experiments.base import shutdown_pool
from repro.explore.engine import explore

#: thm1's raw space has 77 plans; 96 enumerates it exhaustively.
EXPLORE_BUDGET = 96


def _scenarios():
    return [
        ("FIG1-sweep", lambda: REGISTRY.run("FIG1", jobs=1)),
        (
            "EXPLORE-shrink",
            lambda: explore(
                "thm1", budget=EXPLORE_BUDGET, seed=0, jobs=1, mode="enumerate"
            ),
        ),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="PATH", help="write the JSON here instead")
    args = parser.parse_args(argv)

    report = ExperimentReport(
        experiment_id="CACHE",
        title="Run cache: cold vs warm",
        claim="a warm cache answers repeated sweeps and shrink replays "
        "without executing a single simulation",
        headers=[
            "scenario",
            "cold_s",
            "warm_s",
            "speedup",
            "cold_executed_sims",
            "warm_executed_sims",
        ],
    )

    scratch = tempfile.mkdtemp(prefix="bench-cache-")
    try:
        for name, run in _scenarios():
            repro.cache.configure(root=f"{scratch}/{name}", enabled=True)
            cache = repro.cache.get_cache()

            before = cache.stats.snapshot()
            started = time.perf_counter()
            run()
            cold_s = time.perf_counter() - started
            cold = cache.stats.delta_since(before)

            before = cache.stats.snapshot()
            started = time.perf_counter()
            run()
            warm_s = time.perf_counter() - started
            warm = cache.stats.delta_since(before)

            report.add_row(
                name,
                round(cold_s, 3),
                round(warm_s, 3),
                round(cold_s / warm_s, 1) if warm_s > 0 else float("inf"),
                cold.executed,
                warm.executed,
            )
    finally:
        shutdown_pool()
        repro.cache.configure()
        shutil.rmtree(scratch, ignore_errors=True)

    emit(report, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
