"""End-to-end wall-clock timings for the FIG3 and EXPLORE sweeps.

Times ``REGISTRY.run`` end to end (full settings, sequential jobs so
the number measures the engine, not the pool; best of ``--repeat``
runs) and emits ``benchmarks/results/BENCH_E2E.json``.  Absolute
seconds are
machine-dependent — the committed baseline documents the measured
trajectory on the reference machine and feeds local
``benchmarks/compare.py`` runs; CI regresses on the machine-independent
MICRO ratios instead.

Usage::

    PYTHONPATH=src python benchmarks/microbench/bench_e2e.py [--jobs N] [--out PATH]
"""

from __future__ import annotations

import argparse
import sys
import time

if __package__ in (None, ""):
    from _harness import emit
else:
    from ._harness import emit

from repro.analysis.report import ExperimentReport
from repro.experiments import REGISTRY

_TARGETS = ["FIG3", "EXPLORE"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1, metavar="N")
    parser.add_argument("--repeat", type=int, default=3, metavar="R")
    parser.add_argument(
        "--fast", action="store_true", help="smoke settings (tiny, noisy)"
    )
    parser.add_argument("--out", metavar="PATH", help="write the JSON here instead")
    args = parser.parse_args(argv)

    report = ExperimentReport(
        experiment_id="E2E",
        title="End-to-end experiment wall clock",
        claim="the hot-path overhaul shows up end to end, not only in "
        "microbenchmarks",
        headers=["experiment", "seconds", "passed"],
    )
    for experiment_id in _TARGETS:
        best = float("inf")
        passed = True
        for _ in range(max(1, args.repeat)):
            started = time.perf_counter()
            result = REGISTRY.run(experiment_id, fast=args.fast, jobs=args.jobs)
            best = min(best, time.perf_counter() - started)
            passed = passed and result.passed
        report.add_row(experiment_id, round(best, 3), passed)

    emit(report, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
