"""Topology-layer microbenchmarks: the pluggable graph must stay cheap.

Two claims gate CI (``benchmarks/compare.py``, 25% band, on the
machine-independent ``speedup_vs_ref`` ratios):

- **Invisibility** — passing ``CompleteTopology(n)`` explicitly costs
  the same as the default ``topology=None`` run (the engine normalizes
  complete instances away, so ``round/complete-arg`` stays ~1.0).
- **Bounded routing cost** — edge-filtered delivery (ring, churn) never
  becomes pathological relative to the default full broadcast; the
  ring actually delivers fewer messages, so its ratio sits above 1.

Usage::

    PYTHONPATH=src python benchmarks/microbench/bench_topology.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse

if __package__ in (None, ""):
    from _harness import best_per_call, emit, ratio, us
else:
    from ._harness import best_per_call, emit, ratio, us

from repro.analysis.report import ExperimentReport
from repro.kernel.faults import FaultPlan
from repro.kernel.topology import ChurnEvent, ChurnSchedule, CompleteTopology, RingTopology
from repro.protocols.unison import MinUnison
from repro.sync.engine import run_sync

N = 8
ROUNDS = 20


def _run(topology=None, fault_plan=None):
    return run_sync(
        MinUnison(),
        n=N,
        rounds=ROUNDS,
        fault_plan=fault_plan,
        topology=topology,
        record_history=False,
    )


def _churn_plan() -> FaultPlan:
    return FaultPlan(
        churn=ChurnSchedule(
            (
                ChurnEvent(3, "leave", pids=(1,)),
                ChurnEvent(7, "join", pids=(1,)),
                ChurnEvent(11, "partition", groups=(frozenset(range(N // 2)),)),
                ChurnEvent(15, "heal"),
            )
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer batches")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()
    number = 5 if args.quick else 20
    repeat = 3 if args.quick else 5

    default_s = best_per_call(lambda: _run(), number, repeat)
    complete_s = best_per_call(lambda: _run(CompleteTopology(N)), number, repeat)
    ring_topo = RingTopology(N)
    ring_s = best_per_call(lambda: _run(ring_topo), number, repeat)
    churn_s = best_per_call(
        lambda: _run(fault_plan=_churn_plan()), number, repeat
    )
    receivers_s = best_per_call(
        lambda: ring_topo.receivers(3, 1), 10_000, repeat
    )

    report = ExperimentReport(
        experiment_id="TOPOLOGY",
        title="Topology-layer microbenchmarks",
        claim=(
            "the complete-graph default is free (explicit CompleteTopology "
            "normalizes to the pre-topology fast path) and edge-filtered "
            "routing stays within a constant factor of full broadcast"
        ),
        headers=["benchmark", "per_call_us", "ref_us", "speedup_vs_ref"],
    )
    report.add_row("round/default", us(default_s), None, None)
    report.add_row(
        "round/complete-arg", us(complete_s), us(default_s), ratio(default_s, complete_s)
    )
    report.add_row("round/ring", us(ring_s), us(default_s), ratio(default_s, ring_s))
    report.add_row("round/churn", us(churn_s), us(default_s), ratio(default_s, churn_s))
    report.add_row("receivers/ring", us(receivers_s), None, None)
    emit(report, out=args.out)


if __name__ == "__main__":
    main()
