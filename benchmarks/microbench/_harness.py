"""Shared timing/emission plumbing for the microbenchmark scripts.

Timing discipline: each benchmark is a zero-argument callable executed
``number`` times per batch; a batch is repeated ``repeat`` times and the
*minimum* batch time is kept (the standard ``timeit`` argument: the
minimum is the least noisy estimator of the true cost — everything
above it is scheduler interference).  Results are reported per call.

The emitted JSON mirrors ``benchmarks/conftest.py``'s ``emit_report``
byte-for-byte (``ExperimentReport.to_json_dict``, sorted keys, indent
2), so ``benchmarks/compare.py`` treats experiment regenerations and
microbenchmarks uniformly.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Callable, Optional

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def best_per_call(
    fn: Callable[[], object],
    number: int,
    repeat: int,
    setup: Optional[Callable[[], object]] = None,
) -> float:
    """Seconds per call: min over ``repeat`` batches of ``number`` calls."""
    best = float("inf")
    for _ in range(repeat):
        if setup is not None:
            setup()
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / number)
    return best


def us(seconds: float) -> float:
    """Microseconds, rounded for stable JSON diffs."""
    return round(seconds * 1e6, 2)


def ratio(reference: float, measured: float) -> float:
    """Speedup of ``measured`` relative to ``reference`` (>1 = faster)."""
    return round(reference / measured, 2) if measured > 0 else float("inf")


def emit(report, out: Optional[str] = None) -> pathlib.Path:
    """Print a report and persist its JSON next to the committed baselines."""
    text = report.render()
    print()
    print(text)
    if out is not None:
        path = pathlib.Path(out)
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"BENCH_{report.experiment_id}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report.to_json_dict(), sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    print(f"\nwrote {path}")
    return path
