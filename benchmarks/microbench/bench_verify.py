"""Verification-plane microbenchmarks: the proof plane must stay exhaustible.

One claim gates CI (``benchmarks/compare.py``, 25% band): the explicit
engine's canonical-state frontier dedup keeps doing real work —
``dedup_hit_ratio`` is a machine-independent property of the space
(state hashes collide across plans because most plans revisit the same
clock configurations), so a drop means the canonicalization or digest
changed, not that the machine got slower.  ``states_per_sec`` and the
wall-clock column are informational: they track the engine's throughput
across machines but are too noisy to gate.

The cache is disabled for the timed region — this benchmark measures
the engine, not the memoization layer (``bench_cache.py`` owns that).

Usage::

    PYTHONPATH=src python benchmarks/microbench/bench_verify.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import time

if __package__ in (None, ""):
    from _harness import best_per_call, emit, us
else:
    from ._harness import best_per_call, emit, us

import repro.cache
from repro.analysis.report import ExperimentReport
from repro.verify import verify


def _verify_fig1_smoke():
    from repro.verify.targets import get_verify_target

    return verify(
        "fig1", space=get_verify_target("fig1").smoke_space, jobs=1
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer batches")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()
    repeat = 2 if args.quick else 3

    repro.cache.disable()
    per_call_s = best_per_call(_verify_fig1_smoke, 1, repeat)

    start = time.perf_counter()
    result = _verify_fig1_smoke()
    elapsed = time.perf_counter() - start
    frontier = result.frontier
    states_per_sec = frontier.states_visited / elapsed if elapsed > 0 else 0.0

    report = ExperimentReport(
        experiment_id="VERIFY-BENCH",
        title="Verification-plane microbenchmarks",
        claim=(
            "exhausting the fig1 smoke space stays cheap and the "
            "canonical-state frontier dedup keeps collapsing revisited "
            "clock configurations (dedup_hit_ratio is machine-independent)"
        ),
        headers=["benchmark", "per_call_us", "states_per_sec", "dedup_hit_ratio"],
    )
    report.add_row(
        "explicit/fig1-smoke",
        us(per_call_s),
        round(states_per_sec),
        round(frontier.dedup_hit_ratio, 4),
    )
    emit(report, out=args.out)


if __name__ == "__main__":
    main()
