"""FIG2 bench: wraps :mod:`repro.experiments.fig2` with wall-clock timing."""

from repro.core.canonical import run_ft
from repro.experiments import fig2
from repro.sync.adversary import RandomAdversary


def test_fig2_ft_baselines(benchmark, emit_report):
    pi, n, mode = fig2.cases()[0]
    benchmark(
        lambda: run_ft(
            pi, n=n, adversary=RandomAdversary(n=n, f=pi.f, mode=mode, rate=0.5, seed=0)
        )
    )
    result = fig2.run()
    emit_report(result.report)
    assert result.passed, result.failures
