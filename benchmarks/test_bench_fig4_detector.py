"""FIG4 bench: wraps :mod:`repro.experiments.fig4` with wall-clock timing."""

from repro.experiments import fig4


def test_fig4_strong_detector(benchmark, emit_report):
    benchmark(fig4.one_run, 6, 0, True)
    result = fig4.run()
    emit_report(result.report)
    assert result.passed, result.failures
