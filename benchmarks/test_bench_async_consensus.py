"""ASYNC-CONS bench: wraps :mod:`repro.experiments.async_cons`."""

from repro.experiments import async_cons


def test_async_consensus(benchmark, emit_report):
    benchmark(async_cons.one_run, "ss", 0, True)
    result = async_cons.run()
    emit_report(result.report)
    assert result.passed, result.failures
