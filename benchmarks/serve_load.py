"""Load benchmark for the :mod:`repro.serve` HTTP sweep service.

Boots a real server on an ephemeral loopback port, then hammers it
with concurrent streaming clients in two phases:

- ``cold`` — every client issues sweeps over *disjoint* seed ranges,
  so each task is a cache miss and executes on the worker fleet;
- ``warm`` — the identical requests again, now answered entirely from
  the shared content-addressed store.

Wall-clock columns (``throughput_rps``/``p50_ms``/``p99_ms``) are
machine-dependent trajectory documentation.  ``hit_ratio`` and
``executed`` are **machine-independent**: the committed baseline pins
``warm`` at ``hit_ratio == 1.0`` and ``executed == 0``, and
``benchmarks/compare.py --fields hit_ratio,executed`` gates on exactly
those.

Usage::

    PYTHONPATH=src python benchmarks/serve_load.py [--out PATH]
        [--clients 8] [--requests 4] [--fleet inproc] [--workers 2]
"""

from __future__ import annotations

import argparse
import pathlib
import shutil
import sys
import tempfile
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent / "microbench"))
from _harness import emit  # noqa: E402

import repro.cache  # noqa: E402
from repro.analysis.report import ExperimentReport  # noqa: E402
from repro.serve import ServeClient, ServerThread  # noqa: E402

EXPERIMENT = "FIG4"
POINTS = ((4, False), (4, True))
SEEDS_PER_REQUEST = 2


def _request_plan(clients: int, requests: int):
    """Disjoint (client, request) -> seeds mapping; cold misses by design."""
    plan = {}
    for client in range(clients):
        for request in range(requests):
            base = (client * requests + request) * SEEDS_PER_REQUEST
            plan[(client, request)] = list(range(base, base + SEEDS_PER_REQUEST))
    return plan


def _drive(url: str, plan, clients: int, requests: int):
    """All clients concurrently; returns (elapsed_s, per-request latencies)."""
    latencies = [[] for _ in range(clients)]
    errors = []
    barrier = threading.Barrier(clients + 1)

    def run_client(index: int) -> None:
        client = ServeClient(url)
        barrier.wait()
        try:
            for request in range(requests):
                started = time.perf_counter()
                summary = client.sweep(
                    EXPERIMENT, points=POINTS, seeds=plan[(index, request)]
                )
                latencies[index].append(time.perf_counter() - started)
                if not summary.ok:
                    errors.append(f"client {index} request {request}: {summary.end}")
        except Exception as error:  # surfaced after join
            errors.append(f"client {index}: {error!r}")

    threads = [
        threading.Thread(target=run_client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - started
    if errors:
        raise SystemExit("serve_load: " + "; ".join(errors[:3]))
    return elapsed, [latency for per_client in latencies for latency in per_client]


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="PATH", help="write the JSON here instead")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=4, help="sweeps per client")
    parser.add_argument("--fleet", choices=("inproc", "tcp"), default="inproc")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    report = ExperimentReport(
        experiment_id="SERVE",
        title="Sweep service under concurrent load",
        claim=f"{args.clients} concurrent streaming clients; the warm phase "
        "answers every task from the shared cache without executing "
        "a single simulation",
        headers=[
            "phase",
            "clients",
            "requests",
            "throughput_rps",
            "p50_ms",
            "p99_ms",
            "hit_ratio",
            "executed",
        ],
    )

    plan = _request_plan(args.clients, args.requests)
    total_requests = args.clients * args.requests
    scratch = tempfile.mkdtemp(prefix="bench-serve-")
    repro.cache.configure(root=scratch, enabled=True)
    try:
        with ServerThread(fleet_kind=args.fleet, workers=args.workers) as server:
            probe = ServeClient(server.url)
            before = probe.stats()["tasks"]
            for phase in ("cold", "warm"):
                elapsed, latencies = _drive(
                    server.url, plan, args.clients, args.requests
                )
                after = probe.stats()["tasks"]
                executed = after["executed"] - before["executed"]
                hits = after["cache_hits"] - before["cache_hits"]
                before = after
                report.add_row(
                    phase,
                    args.clients,
                    total_requests,
                    round(total_requests / elapsed, 1) if elapsed > 0 else float("inf"),
                    round(_percentile(latencies, 0.50) * 1e3, 2),
                    round(_percentile(latencies, 0.99) * 1e3, 2),
                    round(hits / (hits + executed), 3) if hits + executed else 0.0,
                    executed,
                )
    finally:
        repro.cache.configure()
        shutil.rmtree(scratch, ignore_errors=True)

    emit(report, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
