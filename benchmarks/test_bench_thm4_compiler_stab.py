"""THM4 bench: wraps :mod:`repro.experiments.thm4` with wall-clock timing."""

from repro.core.compiler import compile_protocol
from repro.experiments import thm4
from repro.protocols.floodmin import FloodMinConsensus


def test_thm4_compiled_stabilization(benchmark, emit_report):
    pi = FloodMinConsensus(f=2, proposals=[3, 1, 4, 1, 5, 9])
    plus = compile_protocol(pi)
    benchmark(thm4.compiled_history, pi, plus, 0)
    result = thm4.run()
    emit_report(result.report)
    assert result.passed, result.failures
