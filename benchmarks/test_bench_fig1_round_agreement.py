"""FIG1 bench: wraps :mod:`repro.experiments.fig1` with wall-clock timing."""

from repro.experiments import fig1


def test_fig1_round_agreement(benchmark, emit_report):
    benchmark(fig1.one_run, 6, 2, 0)
    result = fig1.run()
    emit_report(result.report)
    assert result.passed, result.failures
