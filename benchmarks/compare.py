"""Diff freshly emitted BENCH_*.json files against committed baselines.

The perf-regression gate: benchmarks (microbench scripts and the
``benchmarks/test_bench_*`` regenerators) emit
``benchmarks/results/BENCH_<ID>.json`` via
``ExperimentReport.to_json_dict``; this tool compares a fresh emission
row-by-row against the committed baseline with a relative tolerance
band and exits non-zero on regression.

Rows are matched by the first header column (override with ``--key``).
For each compared numeric field the direction is inferred from its
name: ``speedup*``, ``*ratio``, ``ops_per_s`` and rate-like fields
(``*per_sec*`` — e.g. the array backend's ``processes_per_sec``, which
would otherwise be misread as time-like by its ``_s`` suffix) are
higher-is-better,
time-like fields (``*_us``, ``*_ns``, ``*_ms``, ``seconds``) and
executed-simulation counts (``*executed*`` — the run cache's
machine-independent effectiveness metric) are lower-is-better.  A fresh value is a regression when it is worse than
``baseline * (1 ± tolerance)``; improvements always pass (commit a new
baseline to ratchet them in).  Non-numeric fields are ignored unless
``--strict-rows`` asks for exact cell equality.

Usage::

    python benchmarks/compare.py BASELINE FRESH [--tolerance 0.25]
        [--fields f1,f2] [--key COLUMN] [--strict-rows]

Exit status: 0 ok, 1 regression, 2 structural mismatch (missing rows or
fields, different experiments).
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
from typing import Dict, List, Optional

_HIGHER_IS_BETTER = ("speedup", "ratio", "ops_per_s", "throughput", "per_sec")
_LOWER_IS_BETTER = (
    "_us",
    "_ns",
    "_ms",
    "seconds",
    "_s",
    "bytes",
    "calls",
    "executed",
    "peak_mb",
)


def _direction(field: str) -> Optional[int]:
    """+1 = higher is better, -1 = lower is better, None = unknown."""
    name = field.lower()
    if any(tag in name for tag in _HIGHER_IS_BETTER):
        return 1
    if any(name.endswith(tag) or tag in name for tag in _LOWER_IS_BETTER):
        return -1
    return None


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _load(path: str) -> Dict:
    try:
        return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise SystemExit(f"compare: cannot read {path}: {error}")


def _keyed_rows(doc: Dict, key: str) -> Dict[object, Dict]:
    rows = {}
    for row in doc.get("rows", []):
        if key not in row:
            raise SystemExit(f"compare: row lacks key column {key!r}: {row}")
        rows[row[key]] = row
    return rows


def compare(
    baseline: Dict,
    fresh: Dict,
    tolerance: float,
    fields: Optional[List[str]] = None,
    key: Optional[str] = None,
    strict_rows: bool = False,
) -> List[str]:
    """All regression/structure problems, as rendered strings."""
    problems: List[str] = []
    if baseline.get("experiment_id") != fresh.get("experiment_id"):
        return [
            f"experiment mismatch: baseline {baseline.get('experiment_id')!r} "
            f"vs fresh {fresh.get('experiment_id')!r}"
        ]
    headers = baseline.get("headers", [])
    if not headers:
        return ["baseline has no headers"]
    key = key or headers[0]
    base_rows = _keyed_rows(baseline, key)
    fresh_rows = _keyed_rows(fresh, key)

    for row_key in base_rows:
        if row_key not in fresh_rows:
            problems.append(f"[{row_key}] missing from fresh emission")
    for row_key in fresh_rows:
        if row_key not in base_rows:
            problems.append(f"[{row_key}] not in baseline (commit a new baseline?)")

    for row_key, base_row in base_rows.items():
        fresh_row = fresh_rows.get(row_key)
        if fresh_row is None:
            continue
        for field in fields if fields is not None else headers:
            if field == key:
                continue
            base_value = base_row.get(field)
            if fields is not None and field not in base_row:
                problems.append(f"[{row_key}] baseline lacks field {field!r}")
                continue
            fresh_value = fresh_row.get(field)
            if not _is_number(base_value):
                if strict_rows and base_value != fresh_value:
                    problems.append(
                        f"[{row_key}] {field}: {base_value!r} -> {fresh_value!r}"
                    )
                continue
            if not _is_number(fresh_value):
                problems.append(
                    f"[{row_key}] {field}: baseline {base_value} but fresh "
                    f"emission has {fresh_value!r}"
                )
                continue
            direction = _direction(field)
            if direction is None:
                # Unknown direction: only flag when explicitly selected.
                if fields is None:
                    continue
                if not math.isclose(
                    fresh_value, base_value, rel_tol=tolerance, abs_tol=1e-12
                ):
                    problems.append(
                        f"[{row_key}] {field}: {base_value} -> {fresh_value} "
                        f"(outside ±{tolerance:.0%})"
                    )
                continue
            if direction > 0:
                floor = base_value * (1.0 - tolerance)
                if fresh_value < floor:
                    problems.append(
                        f"[{row_key}] {field} regressed: {base_value} -> "
                        f"{fresh_value} (floor {floor:.4g} at {tolerance:.0%})"
                    )
            else:
                ceiling = base_value * (1.0 + tolerance)
                if fresh_value > ceiling:
                    problems.append(
                        f"[{row_key}] {field} regressed: {base_value} -> "
                        f"{fresh_value} (ceiling {ceiling:.4g} at {tolerance:.0%})"
                    )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/compare.py",
        description="Compare a fresh BENCH_*.json emission against a baseline.",
    )
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("fresh", help="freshly emitted BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="relative tolerance band (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--fields",
        metavar="F1,F2",
        help="only compare these fields (default: every numeric header "
        "with a known better-direction)",
    )
    parser.add_argument(
        "--key", metavar="COLUMN", help="row-matching column (default: first header)"
    )
    parser.add_argument(
        "--strict-rows",
        action="store_true",
        help="also require non-numeric cells to match exactly",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")

    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    fields = [f.strip() for f in args.fields.split(",")] if args.fields else None
    problems = compare(
        baseline,
        fresh,
        tolerance=args.tolerance,
        fields=fields,
        key=args.key,
        strict_rows=args.strict_rows,
    )
    structural = [p for p in problems if "missing" in p or "lacks" in p or "mismatch" in p]
    for problem in problems:
        print(f"compare: {problem}", file=sys.stderr)
    if problems:
        print(
            f"compare: {len(problems)} problem(s) vs {args.baseline}",
            file=sys.stderr,
        )
        return 2 if structural and len(structural) == len(problems) else 1
    print(
        f"compare: {args.fresh} within ±{args.tolerance:.0%} of {args.baseline}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
