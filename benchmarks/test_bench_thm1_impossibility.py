"""THM1 bench: wraps :mod:`repro.experiments.thm1` with wall-clock timing."""

from repro.core.impossibility import theorem1_scenario
from repro.experiments import thm1


def test_thm1_tentative_definition_defeated(benchmark, emit_report):
    benchmark(theorem1_scenario, 8)
    result = thm1.run()
    emit_report(result.report)
    assert result.passed, result.failures
