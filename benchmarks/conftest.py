"""Benchmark-harness plumbing.

Every benchmark regenerates one experiment from DESIGN.md's index: it
times the core run with pytest-benchmark and emits an
:class:`~repro.analysis.report.ExperimentReport` pairing the paper's
claim with the measured series.  Reports are printed and also written
to ``benchmarks/results/<EXPERIMENT_ID>.txt`` so EXPERIMENTS.md can
reference stable artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit_report():
    """Print an ExperimentReport and persist it under benchmarks/results/."""

    def _emit(report):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = report.render()
        print()
        print(text)
        path = RESULTS_DIR / f"{report.experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _emit
