"""Benchmark-harness plumbing.

Every benchmark regenerates one experiment from DESIGN.md's index: it
times the core run with pytest-benchmark and emits an
:class:`~repro.analysis.report.ExperimentReport` pairing the paper's
claim with the measured series.  Reports are printed and also written
to ``benchmarks/results/<EXPERIMENT_ID>.txt`` (the human-readable
table EXPERIMENTS.md references) and
``benchmarks/results/BENCH_<EXPERIMENT_ID>.json`` (the same rows,
header-keyed, for dashboards and regression tooling).
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit_report():
    """Print an ExperimentReport and persist it under benchmarks/results/."""

    def _emit(report):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = report.render()
        print()
        print(text)
        path = RESULTS_DIR / f"{report.experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        json_path = RESULTS_DIR / f"BENCH_{report.experiment_id}.json"
        json_path.write_text(
            json.dumps(report.to_json_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        return path

    return _emit
