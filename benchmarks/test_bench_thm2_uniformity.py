"""THM2 bench: wraps :mod:`repro.experiments.thm2` with wall-clock timing."""

from repro.core.impossibility import theorem2_scenario
from repro.experiments import thm2


def test_thm2_uniformity_impossibility(benchmark, emit_report):
    benchmark(theorem2_scenario, 3)
    result = thm2.run()
    emit_report(result.report)
    assert result.passed, result.failures
