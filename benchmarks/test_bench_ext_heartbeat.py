"""EXT-HEARTBEAT bench: wraps :mod:`repro.experiments.ext_heartbeat`."""

from repro.experiments import ext_heartbeat


def test_ext_heartbeat(benchmark, emit_report):
    benchmark(ext_heartbeat.consensus_run, 0, True, 150.0)
    result = ext_heartbeat.run()
    emit_report(result.report)
    assert result.passed, result.failures
