"""THM5 bench: wraps :mod:`repro.experiments.thm5` with wall-clock timing."""

from repro.detectors.strong import StrongDetector
from repro.experiments import thm5


def test_thm5_detector_properties(benchmark, emit_report):
    benchmark(thm5.one_run, StrongDetector, 0)
    result = thm5.run()
    emit_report(result.report)
    assert result.passed, result.failures
