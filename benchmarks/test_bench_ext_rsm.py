"""EXT-RSM bench: wraps :mod:`repro.experiments.ext_rsm`."""

from repro.experiments import ext_rsm


def test_ext_rsm(benchmark, emit_report):
    benchmark(ext_rsm.one_run, "fig4", True, 0, 200.0)
    result = ext_rsm.run()
    emit_report(result.report)
    assert result.passed, result.failures
