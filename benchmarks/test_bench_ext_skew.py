"""EXT-SKEW bench: wraps :mod:`repro.experiments.ext_skew`."""

from repro.experiments import ext_skew
from repro.sync.delays import RandomDelay


def test_ext_skew(benchmark, emit_report):
    benchmark(ext_skew.run_with, RandomDelay(seed=0, p_late=0.4), 0)
    result = ext_skew.run()
    emit_report(result.report)
    assert result.passed, result.failures
