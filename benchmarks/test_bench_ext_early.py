"""EXT-EARLY bench: wraps :mod:`repro.experiments.ext_early`."""

from repro.experiments import ext_early
from repro.experiments.base import Expectations


def test_ext_early_deciding_latency(benchmark, emit_report):
    benchmark(ext_early.worst_decision_round, 2, 0, Expectations())
    result = ext_early.run()
    emit_report(result.report)
    assert result.passed, result.failures
