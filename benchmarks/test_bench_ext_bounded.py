"""EXT-BOUNDED bench: wraps :mod:`repro.experiments.ext_bounded`."""

from repro.core.bounded import bounded_refutation_sweep
from repro.experiments import ext_bounded


def test_ext_bounded_counter(benchmark, emit_report):
    benchmark(bounded_refutation_sweep, 64, 1, 3, 20, 10, 0)
    result = ext_bounded.run()
    emit_report(result.report)
    assert result.passed, result.failures
