"""EXT-BYZ bench: wraps :mod:`repro.experiments.ext_byz`."""

from repro.experiments import ext_byz


def test_ext_byzantine_contrast(benchmark, emit_report):
    benchmark(ext_byz.phasequeen_under_lies, 0)
    result = ext_byz.run()
    emit_report(result.report)
    assert result.passed, result.failures
