"""ABL-MERGE bench: wraps :mod:`repro.experiments.abl_merge`."""

from repro.core.rounds import RoundAgreementProtocol
from repro.experiments import abl_merge


def test_ablation_merge_rules(benchmark, emit_report):
    benchmark(abl_merge.random_run, RoundAgreementProtocol(), 0)
    result = abl_merge.run()
    emit_report(result.report)
    assert result.passed, result.failures
