"""ABL-RETX bench: wraps :mod:`repro.experiments.abl_retx`."""

from repro.experiments import abl_retx


def test_ablation_retransmission_and_jump(benchmark, emit_report):
    benchmark(abl_retx.one_run, "ss", False, 1, 100.0)
    result = abl_retx.run()
    emit_report(result.report)
    assert result.passed, result.failures
